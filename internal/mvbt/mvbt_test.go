package mvbt

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 4}); err == nil {
		t.Error("tiny capacity accepted")
	}
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version() != 0 || tr.Len() != 0 {
		t.Error("fresh tree not empty")
	}
}

func TestInsertGetAcrossVersions(t *testing.T) {
	tr, _ := New(Config{Capacity: 8})
	if err := tr.Insert(10, 1.5); err != nil {
		t.Fatal(err)
	}
	v1 := tr.Version()
	if err := tr.Insert(20, 2.5); err != nil {
		t.Fatal(err)
	}
	v2 := tr.Version()
	if err := tr.Delete(10); err != nil {
		t.Fatal(err)
	}
	v3 := tr.Version()

	if _, ok := tr.Get(0, 10); ok {
		t.Error("key visible at version 0")
	}
	if got, ok := tr.Get(v1, 10); !ok || got != 1.5 {
		t.Errorf("Get(v1,10) = %v,%v", got, ok)
	}
	if got, ok := tr.Get(v2, 20); !ok || got != 2.5 {
		t.Errorf("Get(v2,20) = %v,%v", got, ok)
	}
	if _, ok := tr.Get(v3, 10); ok {
		t.Error("deleted key visible at v3")
	}
	if got, ok := tr.Get(v2, 10); !ok || got != 1.5 {
		t.Errorf("Get(v2,10) after delete = %v,%v (old version must survive)", got, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestDoubleInsertAndMissingDelete(t *testing.T) {
	tr, _ := New(Config{Capacity: 8})
	if err := tr.Insert(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(5, 2); err == nil {
		t.Error("double insert accepted")
	}
	if err := tr.Delete(6); err == nil {
		t.Error("delete of missing key accepted")
	}
	// Failed ops must not advance the version.
	if tr.Version() != 1 {
		t.Errorf("version = %d after failed ops, want 1", tr.Version())
	}
}

func TestAddAccumulates(t *testing.T) {
	tr, _ := New(Config{Capacity: 8})
	if err := tr.Add(7, 3); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(7, 4); err != nil {
		t.Fatal(err)
	}
	if got, ok := tr.Get(tr.Version(), 7); !ok || got != 7 {
		t.Errorf("Get = %v,%v", got, ok)
	}
}

func TestManyInsertsSplit(t *testing.T) {
	tr, _ := New(Config{Capacity: 8})
	r := rand.New(rand.NewSource(1))
	keys := r.Perm(2000)
	for _, k := range keys {
		if err := tr.Insert(int64(k), float64(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	cur := tr.Version()
	for _, k := range keys {
		if got, ok := tr.Get(cur, int64(k)); !ok || got != float64(k) {
			t.Fatalf("Get(%d) = %v,%v", k, got, ok)
		}
	}
	// Ascend yields sorted keys.
	var got []int64
	tr.Ascend(cur, func(k int64, _ float64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2000 || !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("Ascend produced %d keys, sorted=%v", len(got),
			sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }))
	}
}

func TestRangeSumCurrentVersion(t *testing.T) {
	tr, _ := New(Config{Capacity: 8})
	for k := int64(0); k < 100; k++ {
		if err := tr.Insert(k, float64(k)); err != nil {
			t.Fatal(err)
		}
	}
	cur := tr.Version()
	for lo := int64(0); lo < 100; lo += 7 {
		for hi := lo; hi < 100; hi += 13 {
			want := 0.0
			for k := lo; k <= hi; k++ {
				want += float64(k)
			}
			if got := tr.RangeSum(cur, lo, hi); got != want {
				t.Fatalf("RangeSum(%d,%d) = %v, want %v", lo, hi, got, want)
			}
		}
	}
	if got := tr.RangeSum(cur, 50, 10); got != 0 {
		t.Errorf("inverted range = %v", got)
	}
	if got := tr.RangeSum(cur+5, 0, 10); got != 0 {
		t.Errorf("future version = %v", got)
	}
}

// TestEveryVersionQueryable is the core multiversion property: after a
// long random insert/delete history, every intermediate version
// answers Get and RangeSum exactly as the shadow snapshot of that
// version.
func TestEveryVersionQueryable(t *testing.T) {
	tr, _ := New(Config{Capacity: 8})
	r := rand.New(rand.NewSource(2))
	live := map[int64]float64{}
	type snap map[int64]float64
	snaps := []snap{{}} // version 0
	for op := 0; op < 600; op++ {
		if len(live) > 0 && r.Intn(3) == 0 {
			// Delete a random live key.
			var ks []int64
			for k := range live {
				ks = append(ks, k)
			}
			sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
			k := ks[r.Intn(len(ks))]
			if err := tr.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(live, k)
		} else {
			k := int64(r.Intn(300))
			if _, dup := live[k]; dup {
				if err := tr.Delete(k); err != nil {
					t.Fatal(err)
				}
				delete(live, k)
			} else {
				v := float64(r.Intn(50) + 1)
				if err := tr.Insert(k, v); err != nil {
					t.Fatal(err)
				}
				live[k] = v
			}
		}
		s := make(snap, len(live))
		for k, v := range live {
			s[k] = v
		}
		snaps = append(snaps, s)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if int64(len(snaps)-1) != tr.Version() {
		t.Fatalf("recorded %d versions, tree at %d", len(snaps)-1, tr.Version())
	}
	// Spot-check a spread of versions exhaustively.
	for ver := 0; ver < len(snaps); ver += 13 {
		s := snaps[ver]
		for k := int64(0); k < 300; k += 3 {
			want, wantOK := s[k]
			got, ok := tr.Get(int64(ver), k)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("v%d Get(%d) = %v,%v want %v,%v", ver, k, got, ok, want, wantOK)
			}
		}
		for q := 0; q < 10; q++ {
			lo := int64(r.Intn(320) - 10)
			hi := lo + int64(r.Intn(120))
			want := 0.0
			for k, v := range s {
				if k >= lo && k <= hi {
					want += v
				}
			}
			if got := tr.RangeSum(int64(ver), lo, hi); got != want {
				t.Fatalf("v%d RangeSum(%d,%d) = %v, want %v", ver, lo, hi, got, want)
			}
		}
	}
}

// Property: random histories across random capacities keep all
// versions exact.
func TestVersionedShadowProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, err := New(Config{Capacity: 8 + r.Intn(24)})
		if err != nil {
			return false
		}
		live := map[int64]float64{}
		var checkVers []int64
		var checkSnaps []map[int64]float64
		for op := 0; op < 200; op++ {
			k := int64(r.Intn(60))
			if _, ok := live[k]; ok {
				if tr.Delete(k) != nil {
					return false
				}
				delete(live, k)
			} else {
				v := float64(r.Intn(9) + 1)
				if tr.Insert(k, v) != nil {
					return false
				}
				live[k] = v
			}
			if r.Intn(10) == 0 {
				s := make(map[int64]float64, len(live))
				for kk, vv := range live {
					s[kk] = vv
				}
				checkVers = append(checkVers, tr.Version())
				checkSnaps = append(checkSnaps, s)
			}
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		for i, ver := range checkVers {
			s := checkSnaps[i]
			lo := int64(r.Intn(60))
			hi := lo + int64(r.Intn(30))
			want := 0.0
			for k, v := range s {
				if k >= lo && k <= hi {
					want += v
				}
			}
			if tr.RangeSum(ver, lo, hi) != want {
				return false
			}
			n := 0
			tr.Ascend(ver, func(int64, float64) bool { n++; return true })
			if n != len(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAppendOnlyFrameworkUse exercises the structure the way
// Section 4 proposes: a 2-d append-only data set (time x key) where
// each framework instance is one tree version, so historical range
// sums are answered against old versions.
func TestAppendOnlyFrameworkUse(t *testing.T) {
	tr, _ := New(Config{Capacity: 16})
	// Occurring times map to the version after the last update of that
	// time.
	versionOf := map[int64]int64{}
	r := rand.New(rand.NewSource(3))
	type pt struct {
		t   int64
		key int64
		v   float64
	}
	var pts []pt
	for tm := int64(0); tm < 30; tm++ {
		for u := 0; u < 10; u++ {
			k := int64(r.Intn(200))
			v := float64(r.Intn(9) + 1)
			if err := tr.Add(k, v); err != nil {
				t.Fatal(err)
			}
			pts = append(pts, pt{t: tm, key: k, v: v})
		}
		versionOf[tm] = tr.Version()
	}
	// A (time <= T, key in [lo,hi]) prefix query is one RangeSum at
	// versionOf[T].
	for T := int64(0); T < 30; T += 5 {
		lo, hi := int64(40), int64(160)
		want := 0.0
		for _, p := range pts {
			if p.t <= T && p.key >= lo && p.key <= hi {
				want += p.v
			}
		}
		if got := tr.RangeSum(versionOf[T], lo, hi); got != want {
			t.Fatalf("prefix time %d: got %v want %v", T, got, want)
		}
	}
}

func TestSpaceLinearInUpdates(t *testing.T) {
	tr, _ := New(Config{Capacity: 16})
	r := rand.New(rand.NewSource(4))
	live := map[int64]bool{}
	ops := 0
	for ops < 4000 {
		k := int64(r.Intn(500))
		if live[k] {
			if err := tr.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(live, k)
		} else {
			if err := tr.Insert(k, 1); err != nil {
				t.Fatal(err)
			}
			live[k] = true
		}
		ops++
	}
	st := tr.Space()
	if st.Live != len(live) || st.Live != tr.Len() {
		t.Fatalf("live = %d, want %d (Len %d)", st.Live, len(live), tr.Len())
	}
	// Linear space: physical entries within a small constant of the
	// update count (each update writes O(1) entries amortised).
	if st.Entries > 6*ops {
		t.Errorf("space %d entries for %d updates; not linear", st.Entries, ops)
	}
	if st.Nodes == 0 || st.Entries < st.Live {
		t.Errorf("implausible space stats %+v", st)
	}
}
