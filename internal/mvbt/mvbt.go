// Package mvbt implements a multiversion B-tree in the style of
// Becker, Gschwind, Ohler, Seeger and Widmayer (VLDB Journal 1996),
// the structure Section 4 of the paper cites as the asymptotically
// optimal external-memory multiversion index, augmented with per-entry
// measure values so that range-sum queries against any version are
// supported — the addition that turns it into the multiversion SB-tree
// of Zhang et al. (PODS 2001), which the paper identifies as an
// instance of its framework for two-dimensional append-only data.
//
// The tree is partially persistent: every update (Insert or Delete)
// creates a new version; any older version remains queryable. Entries
// carry a [start, end) version interval; a node overflowing its
// capacity is version-split (its live entries are copied into a fresh
// node and the old node is frozen), followed by a key split when the
// copy is too full or a merge with a version-split sibling when too
// empty — the weak version condition that keeps every node's live
// entry count bounded for the versions it is responsible for.
package mvbt

import (
	"fmt"
	"math"
)

const infinity = math.MaxInt64

// Config tunes node geometry.
type Config struct {
	// Capacity is the maximum number of physical entries per node
	// (block capacity b). Minimum 8; default 16.
	Capacity int
}

// Tree is the multiversion B-tree.
type Tree struct {
	cap      int
	minLive  int // weak version condition: live entries >= minLive (non-root)
	strongLo int // after restructuring: live in [strongLo, strongHi]
	strongHi int

	version int64
	roots   []rootRef // roots by version interval, ascending start
	size    int       // live keys in the current version
}

type rootRef struct {
	start int64
	node  *node
}

type entry struct {
	key        int64
	start, end int64 // version interval [start, end)
	value      float64
	child      *node // internal entries only
}

type node struct {
	leaf    bool
	entries []entry
}

// New returns an empty tree at version 0.
func New(cfg Config) (*Tree, error) {
	c := cfg.Capacity
	if c == 0 {
		c = 16
	}
	if c < 8 {
		return nil, fmt.Errorf("mvbt: capacity %d too small (need >= 8)", c)
	}
	t := &Tree{
		cap:      c,
		minLive:  c / 5,
		strongLo: c/5 + c/8 + 1,
		strongHi: c - c/8 - 1,
	}
	root := &node{leaf: true}
	t.roots = []rootRef{{start: 0, node: root}}
	return t, nil
}

// Version returns the current version number.
func (t *Tree) Version() int64 { return t.version }

// Len returns the number of live keys in the current version.
func (t *Tree) Len() int { return t.size }

func (t *Tree) rootAt(ver int64) *node {
	// Binary search the last root with start <= ver.
	lo, hi := 0, len(t.roots)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.roots[mid].start <= ver {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return t.roots[lo-1].node
}

func (t *Tree) setRoot(n *node) {
	if t.roots[len(t.roots)-1].start == t.version {
		t.roots[len(t.roots)-1].node = n
		return
	}
	t.roots = append(t.roots, rootRef{start: t.version, node: n})
}

// liveCount returns the number of entries alive at the current
// version.
func (n *node) liveCount() int {
	c := 0
	for _, e := range n.entries {
		if e.end == infinity {
			c++
		}
	}
	return c
}

// liveEntries returns copies of the entries alive at the current
// version.
func (n *node) liveEntries() []entry {
	out := make([]entry, 0, len(n.entries))
	for _, e := range n.entries {
		if e.end == infinity {
			out = append(out, e)
		}
	}
	return out
}

// findLive returns the index of the live entry with the given key, or
// -1.
func (n *node) findLive(key int64) int {
	for i, e := range n.entries {
		if e.end == infinity && e.key == key {
			return i
		}
	}
	return -1
}

// childFor returns the index of the live internal entry responsible
// for key: the live entry with the greatest router key <= key, or the
// smallest router if key precedes all of them.
func (n *node) childFor(key int64) int {
	best := -1
	var bestKey int64
	first := -1
	var firstKey int64
	for i, e := range n.entries {
		if e.end != infinity {
			continue
		}
		if first == -1 || e.key < firstKey {
			first, firstKey = i, e.key
		}
		if e.key <= key && (best == -1 || e.key > bestKey) {
			best, bestKey = i, e.key
		}
	}
	if best >= 0 {
		return best
	}
	return first
}

// Insert adds key with the given measure value to a new version. It
// returns an error if the key is already live (use Add for
// accumulate semantics).
func (t *Tree) Insert(key int64, value float64) error {
	return t.update(key, value, true)
}

// Delete logically deletes the live key in a new version; the key
// remains visible in all earlier versions.
func (t *Tree) Delete(key int64) error {
	return t.update(key, 0, false)
}

func (t *Tree) update(key int64, value float64, insert bool) error {
	t.version++
	root := t.roots[len(t.roots)-1].node
	res, err := t.updateRec(root, key, value, insert)
	if err != nil {
		t.version--
		return err
	}
	switch {
	case res.replacement != nil:
		t.setRoot(res.replacement)
	case len(res.siblings) > 0:
		// Root split: grow a new root over the pieces.
		kids := res.siblings
		nr := &node{}
		for _, k := range kids {
			nr.entries = append(nr.entries, entry{
				key:   k.minLiveKey(),
				start: t.version,
				end:   infinity,
				child: k,
			})
		}
		t.setRoot(nr)
	}
	// Collapse a root with a single live child (after deletions).
	t.collapseRoot()
	if insert {
		t.size++
	} else {
		t.size--
	}
	return nil
}

func (t *Tree) collapseRoot() {
	for {
		root := t.roots[len(t.roots)-1].node
		if root.leaf {
			return
		}
		live := root.liveEntries()
		if len(live) != 1 {
			return
		}
		t.setRoot(live[0].child)
	}
}

func (n *node) minLiveKey() int64 {
	first := true
	var m int64
	for _, e := range n.entries {
		if e.end != infinity {
			continue
		}
		if first || e.key < m {
			m = e.key
			first = false
		}
	}
	return m
}

// updateResult describes how a child changed: in place (nil, nil), by
// replacement (version split that fit into one node), or by splitting
// into multiple siblings.
type updateResult struct {
	replacement *node
	siblings    []*node
}

func (t *Tree) updateRec(n *node, key int64, value float64, insert bool) (updateResult, error) {
	if n.leaf {
		if insert {
			if n.findLive(key) >= 0 {
				return updateResult{}, fmt.Errorf("mvbt: key %d already live; Delete it first or use Add", key)
			}
			work, copied := t.withRoom(n, 1)
			work.entries = append(work.entries, entry{key: key, start: t.version, end: infinity, value: value})
			return t.finish(work, copied), nil
		}
		i := n.findLive(key)
		if i < 0 {
			return updateResult{}, fmt.Errorf("mvbt: key %d not live", key)
		}
		if n.entries[i].start == t.version {
			// Inserted at this same version: drop it physically.
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			n.entries[i].end = t.version
		}
		return updateResult{}, nil
	}

	ci := n.childFor(key)
	if ci < 0 {
		return updateResult{}, fmt.Errorf("mvbt: internal node has no live children")
	}
	child := n.entries[ci].child
	res, err := t.updateRec(child, key, value, insert)
	if err != nil {
		return updateResult{}, err
	}
	if res.replacement == nil && len(res.siblings) == 0 {
		return updateResult{}, nil
	}
	install := res.siblings
	if res.replacement != nil {
		install = []*node{res.replacement}
	}
	// Net growth: new child entries minus the killed one when the kill
	// physically removes it (same-version entries are dropped, older
	// ones only get their interval closed).
	need := len(install)
	if n.entries[ci].start == t.version {
		need--
	}
	oldRouter := n.entries[ci].key
	work, copied := t.withRoom(n, need)
	// Locate and kill the old child entry in the working node.
	wi := -1
	for i, e := range work.entries {
		if e.child == child && e.end == infinity {
			wi = i
			break
		}
	}
	if wi < 0 {
		return updateResult{}, fmt.Errorf("mvbt: lost child entry during version split")
	}
	if work.entries[wi].start == t.version {
		work.entries = append(work.entries[:wi], work.entries[wi+1:]...)
	} else {
		work.entries[wi].end = t.version
	}
	for j, k := range install {
		router := k.minLiveKey()
		if j == 0 && oldRouter < router {
			// Routers are coverage lower bounds, not minimum keys: the
			// leftmost replacement must keep covering everything the
			// killed entry covered, or live keys below the copy's
			// current minimum (still present in the subtree) become
			// unreachable.
			router = oldRouter
		}
		work.entries = append(work.entries, entry{
			key:   router,
			start: t.version,
			end:   infinity,
			child: k,
		})
	}
	return t.finish(work, copied), nil
}

// withRoom returns a node that can absorb `need` more physical entries
// without exceeding the block capacity: the node itself when it fits,
// or a fresh version-split copy of its live entries. The old node's
// live entries are closed at the current version (it is frozen; the
// parent will redirect to the copy).
func (t *Tree) withRoom(n *node, need int) (*node, bool) {
	if len(n.entries)+need <= t.cap {
		return n, false
	}
	fresh := &node{leaf: n.leaf}
	for i := range n.entries {
		if n.entries[i].end != infinity {
			continue
		}
		e := n.entries[i]
		e.start = t.version
		fresh.entries = append(fresh.entries, e)
		n.entries[i].end = t.version
	}
	sortEntriesByKey(fresh.entries)
	return fresh, true
}

// finish applies the strong version condition to a fresh version-split
// node: a strongly overfull copy is key-split into two siblings. Weak
// live underflow is tolerated (nodes with few live entries remain
// valid; the single-live-child root collapse removes degenerate
// levels), trading part of Becker et al.'s space bound for simpler
// restructuring — documented in DESIGN.md.
func (t *Tree) finish(work *node, copied bool) updateResult {
	if !copied {
		return updateResult{}
	}
	sortEntriesByKey(work.entries)
	if len(work.entries) <= t.strongHi {
		return updateResult{replacement: work}
	}
	mid := len(work.entries) / 2
	left := &node{leaf: work.leaf, entries: append([]entry(nil), work.entries[:mid]...)}
	right := &node{leaf: work.leaf, entries: append([]entry(nil), work.entries[mid:]...)}
	return updateResult{siblings: []*node{left, right}}
}

func sortEntriesByKey(es []entry) {
	// Insertion sort: nodes are small (<= capacity).
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].key < es[j-1].key; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// Add gives accumulate semantics on top of Insert/Delete: if the key
// is live, its value is replaced by old+delta in a new version
// (delete + insert, two versions); otherwise the key is inserted with
// value delta.
func (t *Tree) Add(key int64, delta float64) error {
	if v, ok := t.Get(t.version, key); ok {
		if err := t.Delete(key); err != nil {
			return err
		}
		return t.Insert(key, v+delta)
	}
	return t.Insert(key, delta)
}

// Get returns the value of key as of version ver.
func (t *Tree) Get(ver int64, key int64) (float64, bool) {
	if ver < 0 || ver > t.version {
		return 0, false
	}
	n := t.rootAt(ver)
	for n != nil && !n.leaf {
		n = n.childAt(ver, key)
	}
	if n == nil {
		return 0, false
	}
	for _, e := range n.entries {
		if e.key == key && e.start <= ver && ver < e.end {
			return e.value, true
		}
	}
	return 0, false
}

// childAt returns the child responsible for key at version ver.
func (n *node) childAt(ver, key int64) *node {
	var best *node
	var bestKey int64
	var first *node
	var firstKey int64
	for _, e := range n.entries {
		if e.start > ver || ver >= e.end {
			continue
		}
		if first == nil || e.key < firstKey {
			first, firstKey = e.child, e.key
		}
		if e.key <= key && (best == nil || e.key > bestKey) {
			best, bestKey = e.child, e.key
		}
	}
	if best != nil {
		return best
	}
	return first
}

// RangeSum returns the sum of the values of all keys in [lo, hi] as of
// version ver.
func (t *Tree) RangeSum(ver, lo, hi int64) float64 {
	if ver < 0 || ver > t.version || lo > hi {
		return 0
	}
	n := t.rootAt(ver)
	if n == nil {
		return 0
	}
	return t.rangeSumRec(n, ver, lo, hi)
}

func (t *Tree) rangeSumRec(n *node, ver, lo, hi int64) float64 {
	if n.leaf {
		total := 0.0
		for _, e := range n.entries {
			if e.start <= ver && ver < e.end && e.key >= lo && e.key <= hi {
				total += e.value
			}
		}
		return total
	}
	// Visit children alive at ver whose key range can intersect
	// [lo, hi]: a child covers [router, nextRouter).
	type kid struct {
		key   int64
		child *node
	}
	var kids []kid
	for _, e := range n.entries {
		if e.start <= ver && ver < e.end {
			kids = append(kids, kid{key: e.key, child: e.child})
		}
	}
	// Sort by router key.
	for i := 1; i < len(kids); i++ {
		for j := i; j > 0 && kids[j].key < kids[j-1].key; j-- {
			kids[j], kids[j-1] = kids[j-1], kids[j]
		}
	}
	total := 0.0
	for i, k := range kids {
		next := int64(math.MaxInt64)
		if i+1 < len(kids) {
			next = kids[i+1].key
		}
		// Child i covers keys in [k.key, next) — except the first,
		// which also covers anything below its router.
		cLo := k.key
		if i == 0 {
			cLo = math.MinInt64
		}
		if cLo > hi || next <= lo && next != int64(math.MaxInt64) {
			if cLo > hi {
				break
			}
			continue
		}
		total += t.rangeSumRec(k.child, ver, lo, hi)
	}
	return total
}

// Ascend calls fn for each live (key, value) at version ver in
// ascending key order; fn returning false stops the walk.
func (t *Tree) Ascend(ver int64, fn func(key int64, value float64) bool) {
	n := t.rootAt(ver)
	if n == nil {
		return
	}
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n.leaf {
			es := make([]entry, 0, len(n.entries))
			for _, e := range n.entries {
				if e.start <= ver && ver < e.end {
					es = append(es, e)
				}
			}
			sortEntriesByKey(es)
			for _, e := range es {
				if !fn(e.key, e.value) {
					return false
				}
			}
			return true
		}
		type kid struct {
			key   int64
			child *node
		}
		var kids []kid
		for _, e := range n.entries {
			if e.start <= ver && ver < e.end {
				kids = append(kids, kid{e.key, e.child})
			}
		}
		for i := 1; i < len(kids); i++ {
			for j := i; j > 0 && kids[j].key < kids[j-1].key; j-- {
				kids[j], kids[j-1] = kids[j-1], kids[j]
			}
		}
		for _, k := range kids {
			if !walk(k.child) {
				return false
			}
		}
		return true
	}
	walk(n)
}

// CheckInvariants verifies structural sanity for every version
// sampled: version intervals well-formed, capacities respected, and
// leaf reachability consistent. Heavy; intended for tests.
func (t *Tree) CheckInvariants() error {
	seen := map[*node]bool{}
	var walk func(n *node) error
	walk = func(n *node) error {
		if seen[n] {
			return nil
		}
		seen[n] = true
		if len(n.entries) > t.cap {
			return fmt.Errorf("mvbt: node with %d entries exceeds capacity %d", len(n.entries), t.cap)
		}
		for _, e := range n.entries {
			if e.end != infinity && e.end <= e.start {
				return fmt.Errorf("mvbt: entry with empty version interval [%d,%d)", e.start, e.end)
			}
			if e.start > t.version {
				return fmt.Errorf("mvbt: entry starts at future version %d", e.start)
			}
			if !n.leaf {
				if e.child == nil {
					return fmt.Errorf("mvbt: internal entry without child")
				}
				if err := walk(e.child); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, r := range t.roots {
		if err := walk(r.node); err != nil {
			return err
		}
	}
	return nil
}

// SpaceStats reports the multiversion storage profile: Nodes reachable
// from any root, physical Entries across them, and Live entries in the
// current version. The Becker et al. analysis promises space linear in
// the number of updates; tests pin Entries/updates to a small constant.
type SpaceStats struct {
	Nodes   int
	Entries int
	Live    int
}

// Space computes SpaceStats by walking every root.
func (t *Tree) Space() SpaceStats {
	seen := map[*node]bool{}
	var st SpaceStats
	var walk func(n *node)
	walk = func(n *node) {
		if seen[n] {
			return
		}
		seen[n] = true
		st.Nodes++
		st.Entries += len(n.entries)
		for _, e := range n.entries {
			if !n.leaf {
				walk(e.child)
			} else if e.end == infinity {
				st.Live++
			}
		}
	}
	for _, r := range t.roots {
		walk(r.node)
	}
	return st
}
