// Package prefix implements the Prefix Sum technique (PS) of Ho et
// al. (SIGMOD 1997) as a one-dimensional pre-aggregation technique:
// each cell k stores P[k] = sum(A[0..k]). A range sum costs at most
// two cell accesses per dimension (P[u] - P[l-1]); an update to A[i]
// costs up to N-i cell accesses.
//
// In the paper's append-only construction PS is the target form of
// historic time slices: a fully PS-converted (d-1)-dimensional slice
// answers any range query in at most 2^(d-1) cell accesses.
package prefix

import (
	"histcube/internal/dims"
	"histcube/internal/molap"
)

// PS is the Prefix Sum technique. The zero value is ready to use.
type PS struct{}

// Name implements molap.Technique.
func (PS) Name() string { return "PS" }

// Aggregate implements molap.Technique: running sum in place.
func (PS) Aggregate(v []float64) {
	for i := 1; i < len(v); i++ {
		v[i] += v[i-1]
	}
}

// Disaggregate implements molap.Technique: adjacent differences.
func (PS) Disaggregate(v []float64) {
	for i := len(v) - 1; i >= 1; i-- {
		v[i] -= v[i-1]
	}
}

// PrefixTerms implements molap.Technique: P[k] is stored directly.
func (PS) PrefixTerms(dst []molap.Term, _ int, k int) []molap.Term {
	return append(dst, molap.Term{Index: k, Factor: 1})
}

// QueryTerms implements molap.Technique: q(l,u) = P[u] - P[l-1], with
// the P[-1] = 0 convention of the paper.
func (PS) QueryTerms(dst []molap.Term, _ int, l, u int) []molap.Term {
	dst = append(dst, molap.Term{Index: u, Factor: 1})
	if l > 0 {
		dst = append(dst, molap.Term{Index: l - 1, Factor: -1})
	}
	return dst
}

// UpdateCells implements molap.Technique: every P[j], j >= i, covers
// original cell i.
func (PS) UpdateCells(dst []int, n, i int) []int {
	for j := i; j < n; j++ {
		dst = append(dst, j)
	}
	return dst
}

// NewArray returns an all-zero d-dimensional prefix-sum array.
func NewArray(shape dims.Shape) (*molap.Array, error) {
	return molap.New(shape, uniform(len(shape)))
}

// FromDense pre-aggregates a dense original array with PS in every
// dimension.
func FromDense(data []float64, shape dims.Shape) (*molap.Array, error) {
	return molap.FromDense(data, shape, uniform(len(shape)))
}

func uniform(d int) []molap.Technique {
	ts := make([]molap.Technique, d)
	for i := range ts {
		ts[i] = PS{}
	}
	return ts
}
