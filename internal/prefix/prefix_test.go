package prefix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"histcube/internal/dims"
	"histcube/internal/molap"
)

func TestAggregateDisaggregateRoundTrip(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5}
	want := append([]float64(nil), v...)
	PS{}.Aggregate(v)
	expect := []float64{3, 4, 8, 9, 14}
	for i := range v {
		if v[i] != expect[i] {
			t.Fatalf("Aggregate[%d] = %v, want %v", i, v[i], expect[i])
		}
	}
	PS{}.Disaggregate(v)
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("round trip[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

func TestAggregateEmptyAndSingle(t *testing.T) {
	PS{}.Aggregate(nil)
	PS{}.Disaggregate(nil)
	v := []float64{7}
	PS{}.Aggregate(v)
	if v[0] != 7 {
		t.Errorf("single-cell aggregate = %v", v[0])
	}
}

func TestQueryTermsAtMostTwo(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for l := 0; l < n; l++ {
			for u := l; u < n; u++ {
				terms := PS{}.QueryTerms(nil, n, l, u)
				if len(terms) > 2 {
					t.Fatalf("QueryTerms(n=%d,%d,%d) has %d terms", n, l, u, len(terms))
				}
				if l == 0 && len(terms) != 1 {
					t.Fatalf("prefix range should use one term, got %d", len(terms))
				}
			}
		}
	}
}

func TestQueryTermsCorrectOnVector(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 17
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(r.Intn(10))
	}
	p := append([]float64(nil), a...)
	PS{}.Aggregate(p)
	for l := 0; l < n; l++ {
		for u := l; u < n; u++ {
			want := 0.0
			for i := l; i <= u; i++ {
				want += a[i]
			}
			got := 0.0
			for _, tm := range (PS{}).QueryTerms(nil, n, l, u) {
				got += tm.Factor * p[tm.Index]
			}
			if got != want {
				t.Fatalf("q(%d,%d) = %v, want %v", l, u, got, want)
			}
		}
	}
}

func TestUpdateCellsSuffix(t *testing.T) {
	cells := PS{}.UpdateCells(nil, 6, 2)
	if len(cells) != 4 {
		t.Fatalf("UpdateCells(6,2) has %d cells", len(cells))
	}
	for i, c := range cells {
		if c != 2+i {
			t.Fatalf("UpdateCells(6,2)[%d] = %d", i, c)
		}
	}
}

func TestArrayMatchesNaiveMultiDim(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	shape := dims.Shape{6, 5, 4}
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = float64(r.Intn(7))
	}
	a, err := FromDense(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		lo := make([]int, 3)
		hi := make([]int, 3)
		for i, n := range shape {
			lo[i] = r.Intn(n)
			hi[i] = lo[i] + r.Intn(n-lo[i])
		}
		b := dims.Box{Lo: lo, Hi: hi}
		got, err := a.Query(b)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		b.Iter(func(x []int) { want += data[shape.Flatten(x)] })
		if got != want {
			t.Fatalf("Query(%v) = %v, want %v", b, got, want)
		}
	}
}

func TestQueryCostBound(t *testing.T) {
	// A d-dimensional PS query costs at most 2^d cell accesses.
	shape := dims.Shape{16, 16, 16}
	a, _ := NewArray(shape)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		lo := make([]int, 3)
		hi := make([]int, 3)
		for i, n := range shape {
			lo[i] = r.Intn(n)
			hi[i] = lo[i] + r.Intn(n-lo[i])
		}
		a.Accesses = 0
		if _, err := a.Query(dims.Box{Lo: lo, Hi: hi}); err != nil {
			t.Fatal(err)
		}
		if a.Accesses > 8 {
			t.Fatalf("PS query cost %d exceeds 2^3", a.Accesses)
		}
	}
}

func TestUpdateMatchesQueriesAfterward(t *testing.T) {
	shape := dims.Shape{8, 8}
	a, _ := NewArray(shape)
	a.Update([]int{3, 4}, 2.5)
	a.Update([]int{0, 0}, 1)
	got, _ := a.Query(dims.FullBox(shape))
	if got != 3.5 {
		t.Errorf("full query after updates = %v, want 3.5", got)
	}
	got, _ = a.Query(dims.NewBox([]int{3, 4}, []int{3, 4}))
	if got != 2.5 {
		t.Errorf("point query = %v, want 2.5", got)
	}
	got, _ = a.Query(dims.NewBox([]int{1, 1}, []int{2, 7}))
	if got != 0 {
		t.Errorf("empty-region query = %v, want 0", got)
	}
}

// Property: PS range evaluation equals a naive sum for random vectors
// and ranges.
func TestRangeEqualsNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(30) + 1
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(r.Intn(20) - 10)
		}
		p := append([]float64(nil), a...)
		PS{}.Aggregate(p)
		l := r.Intn(n)
		u := l + r.Intn(n-l)
		want := 0.0
		for i := l; i <= u; i++ {
			want += a[i]
		}
		got := 0.0
		for _, tm := range (PS{}).QueryTerms(nil, n, l, u) {
			got += tm.Factor * p[tm.Index]
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: an update through UpdateCells keeps the aggregated vector
// consistent with re-aggregating the updated original.
func TestUpdateConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20) + 1
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(r.Intn(10))
		}
		p := append([]float64(nil), a...)
		PS{}.Aggregate(p)
		i := r.Intn(n)
		delta := float64(r.Intn(11) - 5)
		for _, c := range (PS{}).UpdateCells(nil, n, i) {
			p[c] += delta
		}
		a[i] += delta
		want := append([]float64(nil), a...)
		PS{}.Aggregate(want)
		for k := range p {
			if p[k] != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTechniqueName(t *testing.T) {
	var _ molap.Technique = PS{}
	if (PS{}).Name() != "PS" {
		t.Errorf("Name() = %q", PS{}.Name())
	}
}
