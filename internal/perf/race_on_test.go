//go:build race

package perf

// raceEnabled lets timing-sensitive tests skip under the race
// detector, whose instrumentation inflates per-op costs ~10x.
const raceEnabled = true
