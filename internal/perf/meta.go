package perf

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// RunMeta attributes a benchmark report to the build and machine that
// produced it. cmd/histperf embeds it in every BENCH_*.json record and
// cmd/histbench in every -json report, so old trajectory points stay
// attributable to a revision — the regression gate is meaningless if
// nobody can tell which build a number came from.
type RunMeta struct {
	Tool       string `json:"tool"`
	GitRev     string `json:"git_rev"`
	GitDirty   bool   `json:"git_dirty,omitempty"`
	Date       string `json:"date"` // RFC 3339, UTC
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// CollectMeta gathers RunMeta for the running tool. The git revision
// comes from the build info VCS stamp when present (go build in a git
// checkout) and falls back to asking git itself, since `go run` and
// test binaries are built without the stamp; "unknown" if neither
// works.
func CollectMeta(tool string) RunMeta {
	m := RunMeta{
		Tool:       tool,
		GitRev:     "unknown",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRev = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	if m.GitRev == "unknown" {
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			if rev := strings.TrimSpace(string(out)); rev != "" {
				m.GitRev = rev
			}
		}
	}
	return m
}
