package perf

import "math/bits"

// The histogram layout is HDR-style sub-bucketed base-2: every octave
// [2^k, 2^(k+1)) of nanoseconds is split into 2^subBits equal-width
// sub-buckets, so a bucket's upper bound overestimates a sample by at
// most 1/2^subBits (12.5% with subBits=3) regardless of magnitude.
// That bounded relative error is what the quantile-accuracy test in
// perf_test.go pins against the exact internal/stats reference.
//
// The layout is shared by the sliding-window Recorder (one bucket
// array per window slot) and the cumulative Hist histperf uses for
// whole-run client-side latency, so live window quantiles and offline
// report quantiles are bucketed identically.
const (
	// subBits selects 8 sub-buckets per octave: <= 12.5% relative
	// quantile error at 8 bytes * numBuckets = ~2.6 KiB per bucket
	// array.
	subBits  = 3
	subCount = 1 << subBits

	// maxOctave caps the representable value at 2^(maxOctave+1) ns
	// (about 2.4 hours); larger samples clamp into the last bucket.
	maxOctave = 42

	// numBuckets: indices [0, subCount) hold the exact small values
	// 0..subCount-1 ns, then (maxOctave-subBits+1) blocks of subCount
	// sub-buckets cover octaves subBits..maxOctave.
	numBuckets = subCount + (maxOctave-subBits+1)*subCount
)

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	if ns < subCount {
		return int(ns) // in [0, subCount): identity mapping
	}
	octave := bits.Len64(uint64(ns)) - 1
	if octave > maxOctave {
		return numBuckets - 1
	}
	idx := int64(octave-subBits+1)*subCount + ((ns >> (uint(octave) - subBits)) & (subCount - 1))
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return int(idx)
}

// bucketUpper returns the largest nanosecond value mapping to bucket
// i — the value quantile estimation reports, mirroring the
// upper-bound convention of obs.Histogram.Quantile.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	block := i/subCount - 1 // 0-based block over octaves >= subBits
	sub := i % subCount
	octave := block + subBits
	width := int64(1) << (uint(octave) - subBits)
	lower := (int64(subCount) + int64(sub)) * width
	return lower + width - 1
}
