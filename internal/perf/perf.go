// Package perf is histcube's performance-observability layer: sliding-
// window latency recorders that answer "what are ops/sec and
// p50/p95/p99 over the last N seconds" on a live server, cheaply
// enough to sit on every request.
//
// A Recorder keeps a ring of fixed-width log-bucketed histogram slots
// (bucket.go) and rotates them on a coarse clock: each slot covers
// window/slots of wall time, recording is a handful of atomic adds
// into the slot owning the current time unit, and a snapshot merges
// the slots still inside the window. There are no per-sample
// allocations and no locks on the hot path — a mutex is taken only on
// slot rotation (once per slot duration per recorder) to serialise the
// zeroing. Like internal/trace, every method is nil-receiver-safe so a
// disabled recorder costs one branch; the overhead is pinned by a
// benchmark-backed guard (overhead_test.go) the same way the
// disabled-tracer cost is.
//
// Accuracy contract: quantiles come from bucket upper bounds, so they
// overestimate by at most 1/2^subBits (12.5%); window edges are
// quantised to the slot duration, so a snapshot covers between
// window-slotDur and window of history. Both slacks are deliberate —
// they buy the atomic, allocation-free hot path.
//
// Rotation slack: a sample recorded exactly while its slot is being
// re-zeroed for a new time unit may land in the new window or be
// dropped; at one rotation per slot per slotDur this mis-accounts at
// most a handful of samples per window, which is noise at the ops/sec
// volumes the recorder exists to measure.
package perf

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"histcube/internal/obs"
)

// Snapshot is one recorder's view of the sliding window. Durations
// marshal as nanosecond integers, matching the trace JSON convention
// (duration_ns) of the other /debug feeds.
type Snapshot struct {
	// Window is the nominal window the recorder was configured with.
	Window time.Duration `json:"window_ns"`
	// Covered is the wall time the merged slots actually span (between
	// Window-slotDur and Window once the ring is warm; less right
	// after start).
	Covered time.Duration `json:"covered_ns"`
	Count   int64         `json:"count"`
	// OpsPerSec is Count over Covered (0 when nothing was recorded).
	OpsPerSec float64       `json:"ops_per_sec"`
	Mean      time.Duration `json:"mean_ns"`
	P50       time.Duration `json:"p50_ns"`
	P95       time.Duration `json:"p95_ns"`
	P99       time.Duration `json:"p99_ns"`
	Max       time.Duration `json:"max_ns"`
}

// slot is one rotation unit of the ring: a log-bucketed histogram plus
// count/sum/max, all atomics. epoch holds the absolute time unit
// (elapsed/slotDur) the slot currently covers, -1 while empty.
type slot struct {
	epoch atomic.Int64
	// mu serialises rotation (zeroing) only; recording never takes it.
	mu      sync.Mutex
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// reset re-points the slot at time unit `unit`, zeroing its contents.
// Only the rotation path calls it, under mu.
func (s *slot) reset(unit int64) {
	s.count.Store(0)
	s.sum.Store(0)
	s.max.Store(0)
	for i := range s.buckets {
		s.buckets[i].Store(0)
	}
	// The epoch flips last: a recorder that observes the new epoch
	// without taking mu is guaranteed to find zeroed buckets.
	s.epoch.Store(unit)
}

// Recorder measures latency over a sliding window. The zero value is
// not usable; call New. All methods are safe on a nil receiver and
// safe for concurrent use.
type Recorder struct {
	window    time.Duration
	slotNanos int64
	start     time.Time
	// clock returns elapsed nanoseconds since start; tests swap it for
	// a deterministic one. time.Since reads the monotonic clock, so
	// wall-clock jumps cannot tear the window.
	clock func() int64
	slots []slot
}

// recorderSlots fixes the ring size: window/8 slot granularity keeps
// the edge quantisation at 12.5% of the window, matching the bucket
// resolution.
const recorderSlots = 8

// New returns a Recorder over the given window (<= 0 selects 10s).
func New(window time.Duration) *Recorder {
	if window <= 0 {
		window = 10 * time.Second
	}
	r := &Recorder{
		window:    window,
		slotNanos: int64(window) / recorderSlots,
		start:     time.Now(),
		slots:     make([]slot, recorderSlots),
	}
	if r.slotNanos <= 0 {
		r.slotNanos = 1
	}
	r.clock = func() int64 { return time.Since(r.start).Nanoseconds() }
	for i := range r.slots {
		r.slots[i].epoch.Store(-1)
	}
	return r
}

// Window returns the configured window (0 on nil).
func (r *Recorder) Window() time.Duration {
	if r == nil {
		return 0
	}
	return r.window
}

// Record adds one duration sample to the current slot.
func (r *Recorder) Record(d time.Duration) {
	if r == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	unit := r.clock() / r.slotNanos
	idx := unit % int64(len(r.slots))
	if idx < 0 {
		idx = 0 // a test clock running before the recorder's start
	}
	s := &r.slots[int(idx)]
	if e := s.epoch.Load(); e != unit {
		// Rotation: the slot still holds a lapsed time unit. Whoever
		// gets mu first zeroes it; laggards re-check under the lock
		// and fall through. e > unit (a recorder delayed across a
		// whole ring revolution) also lands here and re-points the
		// slot — the sample is then attributed to the current unit,
		// the closest honest choice.
		s.mu.Lock()
		if s.epoch.Load() != unit {
			s.reset(unit)
		}
		s.mu.Unlock()
	}
	s.count.Add(1)
	s.sum.Add(ns)
	for {
		old := s.max.Load()
		if ns <= old || s.max.CompareAndSwap(old, ns) {
			break
		}
	}
	s.buckets[bucketIndex(ns)].Add(1)
}

// Snapshot merges the slots still inside the window into one digest.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	now := r.clock()
	cur := now / r.slotNanos
	oldest := cur - int64(len(r.slots)) + 1
	var (
		merged     [numBuckets]int64
		count, sum int64
		max        int64
		minEpoch   = int64(-1)
	)
	for i := range r.slots {
		s := &r.slots[i]
		e := s.epoch.Load()
		if e < 0 || e < oldest || e > cur {
			continue // never used, lapsed, or not yet rotated: outside the window
		}
		c := s.count.Load()
		if c == 0 {
			continue // reset races ahead of the first add; treat as empty
		}
		count += c
		sum += s.sum.Load()
		if m := s.max.Load(); m > max {
			max = m
		}
		for b := range merged {
			merged[b] += s.buckets[b].Load()
		}
		if minEpoch < 0 || e < minEpoch {
			minEpoch = e
		}
	}
	snap := Snapshot{Window: r.window}
	if count == 0 {
		return snap
	}
	covered := now - minEpoch*r.slotNanos
	if covered <= 0 {
		covered = r.slotNanos
	}
	snap.Covered = time.Duration(covered)
	snap.Count = count
	snap.OpsPerSec = float64(count) / snap.Covered.Seconds()
	snap.Mean = time.Duration(sum / count)
	snap.P50 = mergedQuantile(&merged, count, 0.5)
	snap.P95 = mergedQuantile(&merged, count, 0.95)
	snap.P99 = mergedQuantile(&merged, count, 0.99)
	snap.Max = time.Duration(max)
	return snap
}

// mergedQuantile applies the nearest-rank rule of stats.Quantile to a
// merged bucket array, reporting the containing bucket's upper bound.
func mergedQuantile(buckets *[numBuckets]int64, count int64, q float64) time.Duration {
	rank := nearestRank(count, q)
	cum := int64(0)
	last := 0
	for i := range buckets {
		if buckets[i] == 0 {
			continue
		}
		cum += buckets[i]
		last = i
		if cum >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(bucketUpper(last))
}

// nearestRank is stats.Quantile's rank rule: the smallest rank r with
// r >= q*n, clamped to [1, n], with the same epsilon guard against a
// float boundary rounding a rank up.
func nearestRank(n int64, q float64) int64 {
	rank := int64(math.Ceil(q*float64(n) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank
}

// Set is a fixed group of recorders keyed by name (histserve keys by
// protocol command). The name set is frozen at construction so the
// hot path is one map read on an immutable map — no lock. All methods
// are nil-receiver-safe.
type Set struct {
	window time.Duration
	names  []string
	recs   map[string]*Recorder
}

// NewSet builds one Recorder per name over the shared window.
func NewSet(window time.Duration, names ...string) *Set {
	s := &Set{window: window, names: append([]string(nil), names...), recs: make(map[string]*Recorder, len(names))}
	for _, n := range s.names {
		if _, dup := s.recs[n]; !dup {
			s.recs[n] = New(window)
		}
	}
	return s
}

// Window returns the shared window (0 on nil).
func (s *Set) Window() time.Duration {
	if s == nil {
		return 0
	}
	return s.window
}

// Record adds one sample under name; unknown names are dropped (the
// caller pre-maps strays to a catch-all key, as histserve does with
// "other").
func (s *Set) Record(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.recs[name].Record(d) // a missing name yields a nil *Recorder: no-op
}

// Snapshot digests one recorder (zero Snapshot for unknown names).
func (s *Set) Snapshot(name string) Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return s.recs[name].Snapshot()
}

// Names returns the registration-order name list (nil on nil).
func (s *Set) Names() []string {
	if s == nil {
		return nil
	}
	return append([]string(nil), s.names...)
}

// Register publishes every recorder's window digest on reg:
// histserve_cmd_latency_seconds{cmd,stat} for stat in
// p50/p95/p99/max/mean, histserve_cmd_window_ops_per_sec{cmd} and
// histserve_cmd_window_count{cmd}. Values are computed at scrape time
// from the live window, so the scrape costs a snapshot per command
// and the hot path costs nothing extra.
func (s *Set) Register(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	stats := []struct {
		stat string
		get  func(Snapshot) time.Duration
	}{
		{"p50", func(sn Snapshot) time.Duration { return sn.P50 }},
		{"p95", func(sn Snapshot) time.Duration { return sn.P95 }},
		{"p99", func(sn Snapshot) time.Duration { return sn.P99 }},
		{"max", func(sn Snapshot) time.Duration { return sn.Max }},
		{"mean", func(sn Snapshot) time.Duration { return sn.Mean }},
	}
	for _, name := range s.names {
		rec := s.recs[name]
		for _, st := range stats {
			get := st.get
			reg.NewGaugeFunc("histserve_cmd_latency_seconds",
				"Per-command latency digest over the sliding window, by cmd and stat.",
				func() float64 { return get(rec.Snapshot()).Seconds() },
				obs.Label{Key: "cmd", Value: name}, obs.Label{Key: "stat", Value: st.stat})
		}
		reg.NewGaugeFunc("histserve_cmd_window_ops_per_sec",
			"Per-command throughput over the sliding window.",
			func() float64 { return rec.Snapshot().OpsPerSec },
			obs.Label{Key: "cmd", Value: name})
		reg.NewGaugeFunc("histserve_cmd_window_count",
			"Per-command request count inside the sliding window.",
			func() float64 { return float64(rec.Snapshot().Count) },
			obs.Label{Key: "cmd", Value: name})
	}
}

// RegisterProxy is Register for cmd/histproxy: the same window digests
// under the histproxy_cmd_* names. It duplicates Register rather than
// parameterising the prefix because metric names must be string
// literals at the registration site (the metricname analyzer's
// greppability rule).
func (s *Set) RegisterProxy(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	stats := []struct {
		stat string
		get  func(Snapshot) time.Duration
	}{
		{"p50", func(sn Snapshot) time.Duration { return sn.P50 }},
		{"p95", func(sn Snapshot) time.Duration { return sn.P95 }},
		{"p99", func(sn Snapshot) time.Duration { return sn.P99 }},
		{"max", func(sn Snapshot) time.Duration { return sn.Max }},
		{"mean", func(sn Snapshot) time.Duration { return sn.Mean }},
	}
	for _, name := range s.names {
		rec := s.recs[name]
		for _, st := range stats {
			get := st.get
			reg.NewGaugeFunc("histproxy_cmd_latency_seconds",
				"Per-command proxy latency digest over the sliding window, by cmd and stat.",
				func() float64 { return get(rec.Snapshot()).Seconds() },
				obs.Label{Key: "cmd", Value: name}, obs.Label{Key: "stat", Value: st.stat})
		}
		reg.NewGaugeFunc("histproxy_cmd_window_ops_per_sec",
			"Per-command proxy throughput over the sliding window.",
			func() float64 { return rec.Snapshot().OpsPerSec },
			obs.Label{Key: "cmd", Value: name})
		reg.NewGaugeFunc("histproxy_cmd_window_count",
			"Per-command proxy request count inside the sliding window.",
			func() float64 { return float64(rec.Snapshot().Count) },
			obs.Label{Key: "cmd", Value: name})
	}
}
