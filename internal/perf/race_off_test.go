//go:build !race

package perf

const raceEnabled = false
