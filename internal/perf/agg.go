package perf

import "time"

// Hist is a cumulative (non-windowed) latency histogram on the same
// log-bucket layout as the windowed Recorder. cmd/histperf keeps one
// per worker per command for client-side whole-run latency: unlike
// obs.Series it never retains raw samples, so a multi-minute
// closed-loop run at six-figure ops/sec costs a fixed ~2.6 KiB per
// histogram instead of gigabytes. Methods are nil-receiver-safe; a
// Hist is NOT safe for concurrent use (one per worker, merged after
// the run).
type Hist struct {
	count   int64
	sum     int64
	max     int64
	buckets [numBuckets]int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{} }

// Record adds one duration sample.
func (h *Hist) Record(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
	h.buckets[bucketIndex(ns)]++
}

// Merge folds other into h (for combining per-worker histograms).
func (h *Hist) Merge(other *Hist) {
	if h == nil || other == nil {
		return
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// Count returns the number of samples.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the mean sample (0 when empty).
func (h *Hist) Mean() time.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max returns the largest sample seen (exact, not bucketed).
func (h *Hist) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max)
}

// Quantile estimates the q-quantile with the nearest-rank rule on the
// bucket upper bounds (<= 12.5% overestimate; 0 when empty).
func (h *Hist) Quantile(q float64) time.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return mergedQuantile(&h.buckets, h.count, q)
}
