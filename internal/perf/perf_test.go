package perf

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"histcube/internal/obs"
	"histcube/internal/stats"
)

// fakeClock drives a Recorder deterministically.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() int64              { return c.ns }
func (c *fakeClock) advance(d time.Duration) { c.ns += int64(d) }

func newTestRecorder(window time.Duration) (*Recorder, *fakeClock) {
	r := New(window)
	c := &fakeClock{}
	r.clock = c.now
	return r, c
}

func TestBucketLayout(t *testing.T) {
	// Every representable value must land in a bucket whose upper
	// bound is >= the value and overestimates by at most 1/subCount.
	for _, ns := range []int64{0, 1, 7, 8, 9, 15, 16, 17, 100, 999,
		1e3, 1e6, 123456789, 1e9, 55e9, int64(1) << maxOctave} {
		i := bucketIndex(ns)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", ns, i)
		}
		up := bucketUpper(i)
		if up < ns {
			t.Errorf("bucketUpper(bucketIndex(%d)) = %d < value", ns, up)
		}
		if ns >= subCount && float64(up) > float64(ns)*(1+1.0/subCount) {
			t.Errorf("bucket upper %d overestimates %d by more than 1/%d", up, ns, subCount)
		}
	}
	// Bucket upper bounds must be strictly increasing (each value maps
	// to exactly one quantile estimate).
	for i := 1; i < numBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketUpper not increasing at %d: %d <= %d", i, bucketUpper(i), bucketUpper(i-1))
		}
	}
	// Negative and over-range values clamp instead of panicking.
	if got := bucketIndex(-5); got != 0 {
		t.Errorf("bucketIndex(-5) = %d, want 0", got)
	}
	if got := bucketIndex(int64(1) << 62); got != numBuckets-1 {
		t.Errorf("bucketIndex(1<<62) = %d, want last bucket %d", got, numBuckets-1)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Record(time.Millisecond)
	if snap := r.Snapshot(); snap.Count != 0 {
		t.Fatalf("nil recorder snapshot: %+v", snap)
	}
	if r.Window() != 0 {
		t.Fatal("nil recorder window")
	}
	var s *Set
	s.Record("QRY", time.Millisecond)
	s.Register(nil)
	if snap := s.Snapshot("QRY"); snap.Count != 0 {
		t.Fatalf("nil set snapshot: %+v", snap)
	}
	if s.Names() != nil || s.Window() != 0 {
		t.Fatal("nil set accessors")
	}
	var h *Hist
	h.Record(time.Millisecond)
	h.Merge(NewHist())
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("nil hist accessors")
	}
}

// TestWindowRotation pins the sliding-window semantics: samples fall
// out of the snapshot once the coarse clock moves their slot out of
// the window, and a slot is re-zeroed when its ring position is
// reused.
func TestWindowRotation(t *testing.T) {
	const window = 8 * time.Second // slotDur = 1s with recorderSlots = 8
	r, c := newTestRecorder(window)

	// 10 samples in the first second.
	for i := 0; i < 10; i++ {
		r.Record(time.Millisecond)
	}
	if got := r.Snapshot().Count; got != 10 {
		t.Fatalf("count after first slot = %d, want 10", got)
	}

	// Four seconds later they are still inside the window...
	c.advance(4 * time.Second)
	r.Record(2 * time.Millisecond)
	if got := r.Snapshot().Count; got != 11 {
		t.Fatalf("count mid-window = %d, want 11", got)
	}

	// ...but once the clock passes slot 0's next revolution, the first
	// batch must be gone while the mid-window sample survives.
	c.advance(4 * time.Second) // t=8s: slot 0 lapses out of [1s, 8s]
	if got := r.Snapshot().Count; got != 1 {
		t.Fatalf("count after first slot lapsed = %d, want 1", got)
	}

	// Recording at t=8s reuses ring position 0; the snapshot must see
	// the fresh sample, not 10+1 stale ones.
	r.Record(3 * time.Millisecond)
	snap := r.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("count after rotation reuse = %d, want 2", snap.Count)
	}
	if snap.Max != 3*time.Millisecond {
		t.Fatalf("max after rotation = %v, want 3ms", snap.Max)
	}

	// A full window of silence empties the snapshot entirely.
	c.advance(2 * window)
	snap = r.Snapshot()
	if snap.Count != 0 || snap.OpsPerSec != 0 {
		t.Fatalf("snapshot after idle window: %+v", snap)
	}
}

// TestOpsPerSec pins the throughput math: count over covered time.
func TestOpsPerSec(t *testing.T) {
	r, c := newTestRecorder(8 * time.Second)
	for i := 0; i < 4; i++ { // 100 ops/sec for 4 seconds
		for j := 0; j < 100; j++ {
			r.Record(time.Microsecond)
		}
		c.advance(time.Second)
	}
	snap := r.Snapshot()
	if snap.Count != 400 {
		t.Fatalf("count = %d, want 400", snap.Count)
	}
	// Covered time is 4s (oldest populated slot start to now).
	if snap.OpsPerSec < 95 || snap.OpsPerSec > 105 {
		t.Fatalf("ops/sec = %.1f, want ~100", snap.OpsPerSec)
	}
}

// TestQuantileAccuracy feeds known distributions through both the
// bucketed paths (windowed Recorder, cumulative Hist) and the exact
// internal/stats reference, asserting the documented error bound: the
// bucketed estimate never undershoots and overestimates by at most
// 1/subCount plus one bucket of slack.
func TestQuantileAccuracy(t *testing.T) {
	distributions := map[string][]float64{
		"uniform":   nil,
		"lognormal": nil,
		"bimodal":   nil,
	}
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	for i := 0; i < n; i++ {
		distributions["uniform"] = append(distributions["uniform"], 1e3+rng.Float64()*1e6)
		distributions["lognormal"] = append(distributions["lognormal"], 1e4*math.Exp(rng.NormFloat64()))
		mode := 5e4
		if rng.Intn(10) == 0 {
			mode = 5e6 // 10% slow outliers, the tail p99 must see
		}
		distributions["bimodal"] = append(distributions["bimodal"], mode*(0.5+rng.Float64()))
	}
	for name, xs := range distributions {
		r, _ := newTestRecorder(time.Hour) // one giant window: nothing lapses
		h := NewHist()
		for _, x := range xs {
			r.Record(time.Duration(x))
			h.Record(time.Duration(x))
		}
		snap := r.Snapshot()
		for _, tc := range []struct {
			q    float64
			got  time.Duration
			hist time.Duration
		}{
			{0.5, snap.P50, h.Quantile(0.5)},
			{0.95, snap.P95, h.Quantile(0.95)},
			{0.99, snap.P99, h.Quantile(0.99)},
		} {
			exact := stats.Quantile(xs, tc.q)
			lo, hi := exact, exact*(1+1.0/subCount)*(1+1.0/subCount)
			if g := float64(tc.got); g < lo || g > hi {
				t.Errorf("%s p%.0f: recorder %v outside [%v, %v] (exact %v)",
					name, tc.q*100, tc.got, time.Duration(lo), time.Duration(hi), time.Duration(exact))
			}
			if tc.hist != tc.got {
				t.Errorf("%s p%.0f: Hist %v != Recorder %v on identical samples", name, tc.q*100, tc.hist, tc.got)
			}
		}
		// Max is tracked exactly (the samples are ns-truncated floats,
		// so compare against the truncated exact max).
		if want := time.Duration(stats.Quantile(xs, 1)); snap.Max != want {
			t.Errorf("%s: max %v != exact max %v (max is tracked exactly)", name, snap.Max, want)
		}
	}
}

func TestHistMerge(t *testing.T) {
	a, b, all := NewHist(), NewHist(), NewHist()
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * time.Microsecond
		all.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Max() != all.Max() || a.Mean() != all.Mean() {
		t.Fatalf("merge digest mismatch: %d/%v/%v vs %d/%v/%v",
			a.Count(), a.Max(), a.Mean(), all.Count(), all.Max(), all.Mean())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("merge q%.2f: %v != %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

// TestConcurrentRecording is the -race guard of the issue checklist:
// many goroutines hammer one Set across a rotating window while a
// scraper snapshots concurrently. Correctness bar: no race reports, no
// panics, and the final quiescent snapshot accounts exactly the
// samples recorded into the live window.
func TestConcurrentRecording(t *testing.T) {
	set := NewSet(time.Hour, "QRY", "INS", "other") // nothing lapses: counts are exact
	const (
		goroutines = 16
		perG       = 5000
	)
	var recorders, scraper sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = set.Snapshot("QRY")
				_ = set.Snapshot("INS")
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		recorders.Add(1)
		go func(g int) {
			defer recorders.Done()
			for i := 0; i < perG; i++ {
				set.Record("QRY", time.Duration(g+1)*time.Microsecond)
				set.Record("INS", time.Duration(i%100)*time.Microsecond)
				set.Record("UNKNOWN", time.Second) // dropped, must not panic
			}
		}(g)
	}
	recorders.Wait()
	close(stop)
	scraper.Wait()
	if got := set.Snapshot("QRY").Count; got != goroutines*perG {
		t.Fatalf("QRY count = %d, want %d", got, goroutines*perG)
	}
	if got := set.Snapshot("INS").Count; got != goroutines*perG {
		t.Fatalf("INS count = %d, want %d", got, goroutines*perG)
	}
	if got := set.Snapshot("QRY").Max; got != goroutines*time.Microsecond {
		t.Fatalf("QRY max = %v, want %v", got, goroutines*time.Microsecond)
	}
}

// TestRegister renders the Set through an obs registry and checks the
// exposed series carry the documented names and label sets.
func TestRegister(t *testing.T) {
	set := NewSet(time.Hour, "QRY", "INS")
	set.Record("QRY", 10*time.Millisecond)
	set.Record("QRY", 20*time.Millisecond)
	reg := obs.NewRegistry()
	set.Register(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`histserve_cmd_latency_seconds{cmd="QRY",stat="p50"}`,
		`histserve_cmd_latency_seconds{cmd="QRY",stat="p99"}`,
		`histserve_cmd_latency_seconds{cmd="INS",stat="max"}`,
		`histserve_cmd_window_ops_per_sec{cmd="QRY"}`,
		`histserve_cmd_window_count{cmd="QRY"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	// The p50 gauge must reflect the recorded samples (upper-bounded
	// bucket estimate of 10ms, i.e. >= 0.010 and <= 0.012).
	snap := set.Snapshot("QRY")
	if snap.P50 < 10*time.Millisecond || snap.P50 > 12*time.Millisecond {
		t.Errorf("p50 = %v, want ~10ms", snap.P50)
	}
}

// TestRegisterProxy checks the histproxy_ variant exposes the same
// digests under the proxy's metric namespace.
func TestRegisterProxy(t *testing.T) {
	set := NewSet(time.Hour, "QRY", "INS")
	set.Record("QRY", 10*time.Millisecond)
	reg := obs.NewRegistry()
	set.RegisterProxy(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`histproxy_cmd_latency_seconds{cmd="QRY",stat="p50"}`,
		`histproxy_cmd_window_ops_per_sec{cmd="QRY"}`,
		`histproxy_cmd_window_count{cmd="QRY"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "histserve_cmd_") {
		t.Error("RegisterProxy leaked histserve_cmd_ series")
	}
}

func TestCollectMeta(t *testing.T) {
	m := CollectMeta("perftest")
	if m.Tool != "perftest" || m.GoVersion == "" || m.GOMAXPROCS < 1 || m.OS == "" || m.Arch == "" {
		t.Fatalf("incomplete meta: %+v", m)
	}
	if m.GitRev == "" {
		t.Fatal("git rev must be a hash or \"unknown\", never empty")
	}
	if _, err := time.Parse(time.RFC3339, m.Date); err != nil {
		t.Fatalf("date %q not RFC3339: %v", m.Date, err)
	}
}
