package perf

import (
	"testing"
	"time"
)

// perfSink defeats dead-code elimination in the benchmarks below.
var perfSink int64

// benchNilRecorder is the disabled shape: a nil *Recorder (and nil
// *Set) driven through the full API must reduce to one branch per
// call, exactly like the disabled tracer.
func benchNilRecorder(b *testing.B) {
	var r *Recorder
	var s *Set
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(time.Microsecond)
		s.Record("QRY", time.Microsecond)
		perfSink += int64(r.Window())
	}
}

// benchEnabledRecorder is the live hot path cmd/histserve pays on
// every request: one Set lookup plus one windowed Record (clock read,
// epoch check, a handful of atomic adds).
func benchEnabledRecorder(b *testing.B) {
	s := NewSet(10*time.Second, "QRY", "INS", "other")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Record("QRY", time.Duration(i%1000)*time.Microsecond)
	}
	perfSink += s.Snapshot("QRY").Count
}

func BenchmarkNilRecorder(b *testing.B)     { benchNilRecorder(b) }
func BenchmarkEnabledRecorder(b *testing.B) { benchEnabledRecorder(b) }

// TestRecorderOverhead extends the trace-overhead CI guard to the perf
// recorder (check.sh "overhead guards" step): the disabled path must
// stay within the tracer's <= 5 ns/call contract, the enabled path
// within 150 ns/op — generous against CI noise but far below the
// microsecond-scale request costs it measures — and neither may
// allocate.
func TestRecorderOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts the ns/op measurement")
	}
	if testing.Short() {
		t.Skip("benchmark-backed guard")
	}
	nilRes := testing.Benchmark(benchNilRecorder)
	if nilRes.N == 0 {
		t.Fatal("nil benchmark did not run")
	}
	if allocs := nilRes.AllocsPerOp(); allocs != 0 {
		t.Fatalf("nil recorder allocates %d objects/op, want 0", allocs)
	}
	// The benchmark body makes 3 nil-safe calls at <= 5 ns each.
	const nilBudget = 5.0 * 3
	nsPerIter := float64(nilRes.T.Nanoseconds()) / float64(nilRes.N)
	if nsPerIter > nilBudget {
		t.Fatalf("nil recorder costs %.2f ns per 3-call iteration, want <= %.0f", nsPerIter, float64(nilBudget))
	}

	liveRes := testing.Benchmark(benchEnabledRecorder)
	if liveRes.N == 0 {
		t.Fatal("enabled benchmark did not run")
	}
	if allocs := liveRes.AllocsPerOp(); allocs != 0 {
		t.Fatalf("enabled recorder allocates %d objects/op, want 0", allocs)
	}
	liveNs := float64(liveRes.T.Nanoseconds()) / float64(liveRes.N)
	const liveBudget = 150.0
	if liveNs > liveBudget {
		t.Fatalf("enabled recorder costs %.2f ns/op, want <= %.0f", liveNs, liveBudget)
	}
	t.Logf("recorder overhead: nil %.2f ns per 3-call iteration, enabled %.2f ns/op", nsPerIter, liveNs)
}
