// Package directory implements the time directory of Section 2.3: the
// mapping between occurring time values in the TT-dimension and the
// instances of the (d-1)-dimensional structure R_{d-1}. The paper
// suggests "standard one-dimensional data structures for this
// purpose, e.g., a B-tree for a sparse or an array for a dense
// TT-dimension"; both are provided behind one interface. A pointer to
// the latest instance keeps update lookups O(1); Floor lookups cost at
// most O(log n).
package directory

import (
	"errors"
	"sort"

	"histcube/internal/btree"
)

// ErrNotAppendOnly reports an Append with a time value not greater
// than the latest occurring time.
var ErrNotAppendOnly = errors.New("directory: time value must exceed the latest occurring time")

// Directory maps occurring time values to dense instance indices.
type Directory interface {
	// Append registers a new occurring time (strictly greater than the
	// latest) and returns its instance index.
	Append(t int64) (int, error)
	// Floor returns the index of the greatest occurring time <= t.
	Floor(t int64) (int, bool)
	// Latest returns the latest instance index and time; ok is false
	// when empty. This is the O(1) pointer of Section 2.3.
	Latest() (idx int, t int64, ok bool)
	// Len returns the number of occurring times.
	Len() int
	// Time returns the occurring time of instance idx.
	Time(idx int) int64
}

// Array is the dense-TT-dimension directory: a sorted slice with
// binary-search lookups.
type Array struct {
	times []int64
}

// NewArray returns an empty array directory.
func NewArray() *Array { return &Array{} }

// Append implements Directory.
func (a *Array) Append(t int64) (int, error) {
	if n := len(a.times); n > 0 && t <= a.times[n-1] {
		return 0, ErrNotAppendOnly
	}
	a.times = append(a.times, t)
	return len(a.times) - 1, nil
}

// Floor implements Directory.
func (a *Array) Floor(t int64) (int, bool) {
	idx := sort.Search(len(a.times), func(i int) bool { return a.times[i] > t }) - 1
	return idx, idx >= 0
}

// Latest implements Directory.
func (a *Array) Latest() (int, int64, bool) {
	n := len(a.times)
	if n == 0 {
		return 0, 0, false
	}
	return n - 1, a.times[n-1], true
}

// Len implements Directory.
func (a *Array) Len() int { return len(a.times) }

// Time implements Directory.
func (a *Array) Time(idx int) int64 { return a.times[idx] }

// Times returns the backing slice of occurring times in ascending
// order. Callers must not mutate it; it stays valid until the next
// Append.
func (a *Array) Times() []int64 { return a.times }

// Tree is the sparse-TT-dimension directory: a B-tree keyed by time
// with the instance index as payload.
type Tree struct {
	bt    *btree.Tree
	times []int64
}

// NewTree returns an empty B-tree directory.
func NewTree() *Tree { return &Tree{bt: btree.New(0)} }

// Append implements Directory.
func (tr *Tree) Append(t int64) (int, error) {
	if n := len(tr.times); n > 0 && t <= tr.times[n-1] {
		return 0, ErrNotAppendOnly
	}
	idx := len(tr.times)
	tr.bt.Add(t, float64(idx))
	tr.times = append(tr.times, t)
	return idx, nil
}

// Floor implements Directory.
func (tr *Tree) Floor(t int64) (int, bool) {
	key, ok := tr.bt.Floor(t)
	if !ok {
		return 0, false
	}
	idx, _ := tr.bt.Get(key)
	return int(idx), true
}

// Latest implements Directory.
func (tr *Tree) Latest() (int, int64, bool) {
	n := len(tr.times)
	if n == 0 {
		return 0, 0, false
	}
	return n - 1, tr.times[n-1], true
}

// Len implements Directory.
func (tr *Tree) Len() int { return len(tr.times) }

// Time implements Directory.
func (tr *Tree) Time(idx int) int64 { return tr.times[idx] }
