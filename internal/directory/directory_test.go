package directory

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func implementations() map[string]func() Directory {
	return map[string]func() Directory{
		"array": func() Directory { return NewArray() },
		"tree":  func() Directory { return NewTree() },
	}
}

func TestEmptyDirectory(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			if d.Len() != 0 {
				t.Error("non-zero length")
			}
			if _, _, ok := d.Latest(); ok {
				t.Error("Latest on empty returned ok")
			}
			if _, ok := d.Floor(100); ok {
				t.Error("Floor on empty returned ok")
			}
		})
	}
}

func TestAppendAndLookup(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			times := []int64{3, 7, 10, 25}
			for i, tv := range times {
				idx, err := d.Append(tv)
				if err != nil {
					t.Fatal(err)
				}
				if idx != i {
					t.Fatalf("Append(%d) = index %d, want %d", tv, idx, i)
				}
			}
			if d.Len() != 4 {
				t.Fatalf("Len = %d", d.Len())
			}
			idx, tv, ok := d.Latest()
			if !ok || idx != 3 || tv != 25 {
				t.Fatalf("Latest = %d,%d,%v", idx, tv, ok)
			}
			cases := []struct {
				q    int64
				want int
				ok   bool
			}{
				{2, 0, false}, {3, 0, true}, {5, 0, true}, {7, 1, true},
				{9, 1, true}, {10, 2, true}, {24, 2, true}, {25, 3, true}, {1000, 3, true},
			}
			for _, c := range cases {
				got, ok := d.Floor(c.q)
				if ok != c.ok || (ok && got != c.want) {
					t.Errorf("Floor(%d) = %d,%v want %d,%v", c.q, got, ok, c.want, c.ok)
				}
			}
			for i, tv := range times {
				if d.Time(i) != tv {
					t.Errorf("Time(%d) = %d", i, d.Time(i))
				}
			}
		})
	}
}

func TestAppendRejectsNonIncreasing(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			d := mk()
			if _, err := d.Append(5); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Append(5); !errors.Is(err, ErrNotAppendOnly) {
				t.Errorf("equal time: err = %v", err)
			}
			if _, err := d.Append(4); !errors.Is(err, ErrNotAppendOnly) {
				t.Errorf("smaller time: err = %v", err)
			}
		})
	}
}

// Property: both directories agree with a sorted-slice reference for
// random occurring-time sequences.
func TestDirectoriesAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, tr := NewArray(), NewTree()
		var times []int64
		cur := int64(0)
		for i := 0; i < 80; i++ {
			cur += int64(r.Intn(10) + 1)
			if _, err := a.Append(cur); err != nil {
				return false
			}
			if _, err := tr.Append(cur); err != nil {
				return false
			}
			times = append(times, cur)
		}
		for q := 0; q < 60; q++ {
			probe := int64(r.Intn(int(cur) + 20))
			want := sort.Search(len(times), func(i int) bool { return times[i] > probe }) - 1
			ga, oka := a.Floor(probe)
			gt, okt := tr.Floor(probe)
			if want < 0 {
				if oka || okt {
					return false
				}
				continue
			}
			if !oka || !okt || ga != want || gt != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
