package rstar

import (
	"fmt"

	"histcube/internal/dims"
)

// Gd adapts the R*-tree to the framework's GeneralStructure interface
// (satisfied structurally): the general d-dimensional structure G_d of
// Section 2.5 that buffers out-of-order updates, with indexed queries
// instead of the linear scan of the baseline list buffer. The time
// coordinate is stored as dimension 0.
type Gd struct {
	t *Tree
}

// NewGd returns an empty R*-tree-backed out-of-order buffer for
// updates with pointDims non-time coordinates.
func NewGd(pointDims int) (*Gd, error) {
	t, err := New(Config{Dim: pointDims + 1})
	if err != nil {
		return nil, err
	}
	return &Gd{t: t}, nil
}

// Insert buffers the d-dimensional point (t, x) with measure delta.
func (g *Gd) Insert(t int64, x []int, delta float64) {
	coords := make([]int, 0, len(x)+1)
	coords = append(coords, clampToInt(t))
	coords = append(coords, x...)
	if err := g.t.Insert(Entry{Coords: coords, Value: delta}); err != nil {
		panic(fmt.Sprintf("rstar: Gd insert: %v", err))
	}
}

// Query aggregates buffered updates over the time range and box.
func (g *Gd) Query(tLo, tHi int64, b dims.Box) (float64, error) {
	lo := make([]int, 0, len(b.Lo)+1)
	hi := make([]int, 0, len(b.Hi)+1)
	lo = append(lo, clampToInt(tLo))
	hi = append(hi, clampToInt(tHi))
	lo = append(lo, b.Lo...)
	hi = append(hi, b.Hi...)
	return g.t.RangeAggregate(dims.Box{Lo: lo, Hi: hi})
}

func clampToInt(v int64) int {
	const maxInt = int64(^uint(0) >> 1)
	if v > maxInt {
		return int(maxInt)
	}
	if v < -maxInt-1 {
		return int(-maxInt - 1)
	}
	return int(v)
}

// Len returns the number of buffered updates.
func (g *Gd) Len() int { return g.t.Len() }

// PopLatest removes and returns a buffered update with the greatest
// time coordinate.
func (g *Gd) PopLatest() (int64, []int, float64, bool) {
	e, ok := g.t.MaxDim0Entry()
	if !ok {
		return 0, nil, 0, false
	}
	if !g.t.Delete(e.Coords, e.Value) {
		return 0, nil, 0, false
	}
	return int64(e.Coords[0]), append([]int(nil), e.Coords[1:]...), e.Value, true
}

// Tree exposes the underlying R*-tree (for stats).
func (g *Gd) Tree() *Tree { return g.t }
