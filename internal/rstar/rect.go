package rstar

// rect is a closed axis-aligned integer rectangle (the MBR of a node
// or entry).
type rect struct {
	lo, hi []int
}

func pointRect(x []int) rect {
	return rect{lo: append([]int(nil), x...), hi: append([]int(nil), x...)}
}

func (r rect) clone() rect {
	return rect{lo: append([]int(nil), r.lo...), hi: append([]int(nil), r.hi...)}
}

// extend grows r in place to cover o.
func (r *rect) extend(o rect) {
	for i := range r.lo {
		if o.lo[i] < r.lo[i] {
			r.lo[i] = o.lo[i]
		}
		if o.hi[i] > r.hi[i] {
			r.hi[i] = o.hi[i]
		}
	}
}

// area returns the volume (product of side lengths; sides are
// inclusive, so a point has volume 1).
func (r rect) area() float64 {
	a := 1.0
	for i := range r.lo {
		a *= float64(r.hi[i] - r.lo[i] + 1)
	}
	return a
}

// margin returns the sum of side lengths.
func (r rect) margin() float64 {
	m := 0.0
	for i := range r.lo {
		m += float64(r.hi[i] - r.lo[i] + 1)
	}
	return m
}

// enlargement returns the area growth if r were extended to cover o.
func (r rect) enlargement(o rect) float64 {
	a := 1.0
	for i := range r.lo {
		lo, hi := r.lo[i], r.hi[i]
		if o.lo[i] < lo {
			lo = o.lo[i]
		}
		if o.hi[i] > hi {
			hi = o.hi[i]
		}
		a *= float64(hi - lo + 1)
	}
	return a - r.area()
}

// intersects reports whether r and o overlap (closed semantics).
func (r rect) intersects(o rect) bool {
	for i := range r.lo {
		if o.hi[i] < r.lo[i] || o.lo[i] > r.hi[i] {
			return false
		}
	}
	return true
}

// containsRect reports whether r fully contains o.
func (r rect) containsRect(o rect) bool {
	for i := range r.lo {
		if o.lo[i] < r.lo[i] || o.hi[i] > r.hi[i] {
			return false
		}
	}
	return true
}

// containsPoint reports whether the point lies inside r.
func (r rect) containsPoint(x []int) bool {
	for i := range r.lo {
		if x[i] < r.lo[i] || x[i] > r.hi[i] {
			return false
		}
	}
	return true
}

// overlap returns the intersection volume of r and o (0 if disjoint).
func (r rect) overlap(o rect) float64 {
	v := 1.0
	for i := range r.lo {
		lo, hi := r.lo[i], r.hi[i]
		if o.lo[i] > lo {
			lo = o.lo[i]
		}
		if o.hi[i] < hi {
			hi = o.hi[i]
		}
		if hi < lo {
			return 0
		}
		v *= float64(hi - lo + 1)
	}
	return v
}

// centerDist2 returns the squared distance between the centers of r
// and o (in doubled coordinates to stay integral).
func (r rect) centerDist2(o rect) float64 {
	d := 0.0
	for i := range r.lo {
		c1 := float64(r.lo[i] + r.hi[i])
		c2 := float64(o.lo[i] + o.hi[i])
		d += (c1 - c2) * (c1 - c2)
	}
	return d
}
