// Package rstar implements an R*-tree (Beckmann et al., SIGMOD 1990)
// over integer point data with measure values: ChooseSubtree with
// minimum overlap enlargement at the leaf level, forced reinsertion on
// first overflow, and the R* margin/overlap split. A
// Sort-Tile-Recursive bulk load produces the query-optimised packed
// tree the paper's Figure 14 compares against (the paper used the
// Berchtold et al. sort-based bulk load; STR yields equivalently
// packed leaves, and the figure's metric — leaf page accesses — only
// depends on leaf packing quality).
//
// Internal nodes optionally carry aggregate sums, enabling
// range-aggregate queries that skip fully covered subtrees; the plain
// leaf-scan mode reproduces the paper's cost accounting (leaf accesses
// only, internal nodes assumed cached).
package rstar

import (
	"fmt"
	"sort"
)

// Entry is one data point with a measure value.
type Entry struct {
	Coords []int
	Value  float64
}

// Config configures a Tree.
type Config struct {
	// Dim is the number of dimensions (required).
	Dim int
	// MaxEntries is the node capacity; 0 derives it from PageSize.
	MaxEntries int
	// PageSize derives MaxEntries when set: a leaf entry occupies
	// Dim*4+4 bytes (int32 coordinates, float32 measure), matching the
	// paper's 8K pages. Ignored when MaxEntries > 0.
	PageSize int
	// MinFill is the minimum fill fraction (default 0.4, the R*
	// recommendation).
	MinFill float64
	// ReinsertFrac is the fraction of entries force-reinserted on
	// first overflow (default 0.3, the R* recommendation).
	ReinsertFrac float64
}

// Tree is the R*-tree.
type Tree struct {
	dim        int
	max, min   int
	reinsertN  int
	root       *node
	size       int
	height     int
	LeafReads  int64 // leaf accesses by queries (the Fig. 14 metric)
	NodeReads  int64 // all node accesses by queries
	reinserted map[int]bool
}

type node struct {
	leaf     bool
	mbr      rect
	entries  []Entry
	children []*node
	sum      float64
	count    int
}

// New returns an empty tree.
func New(cfg Config) (*Tree, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("rstar: Dim must be positive, got %d", cfg.Dim)
	}
	max := cfg.MaxEntries
	if max == 0 && cfg.PageSize > 0 {
		entry := cfg.Dim*4 + 4
		max = cfg.PageSize / entry
	}
	if max < 4 {
		if max != 0 {
			return nil, fmt.Errorf("rstar: capacity %d too small (need >= 4)", max)
		}
		max = 64
	}
	minFill := cfg.MinFill
	//histlint:ignore nofloateq zero is the config's explicit "use the default" sentinel, not an arithmetic result
	if minFill == 0 {
		minFill = 0.4
	}
	min := int(float64(max) * minFill)
	if min < 2 {
		min = 2
	}
	rf := cfg.ReinsertFrac
	//histlint:ignore nofloateq zero is the config's explicit "use the default" sentinel, not an arithmetic result
	if rf == 0 {
		rf = 0.3
	}
	rn := int(float64(max) * rf)
	if rn < 1 {
		rn = 1
	}
	return &Tree{
		dim:       cfg.Dim,
		max:       max,
		min:       min,
		reinsertN: rn,
		root:      &node{leaf: true},
		height:    1,
	}, nil
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int { return t.height }

// MaxEntries returns the node capacity.
func (t *Tree) MaxEntries() int { return t.max }

// LeafCount returns the number of leaf nodes.
func (t *Tree) LeafCount() int { return t.root.leafCount() }

func (n *node) leafCount() int {
	if n.leaf {
		return 1
	}
	total := 0
	for _, c := range n.children {
		total += c.leafCount()
	}
	return total
}

// Insert adds an entry using the R* insertion algorithm.
func (t *Tree) Insert(e Entry) error {
	if len(e.Coords) != t.dim {
		return fmt.Errorf("rstar: entry has %d dims, tree has %d", len(e.Coords), t.dim)
	}
	e.Coords = append([]int(nil), e.Coords...)
	t.reinserted = make(map[int]bool)
	t.insertAtLevel(e, nil, 0)
	t.size++
	return nil
}

// insertAtLevel inserts either a data entry (subtree == nil) at leaf
// level or a subtree root at the given height-from-leaf level.
func (t *Tree) insertAtLevel(e Entry, subtree *node, level int) {
	r := entryRect(e, subtree)
	leafPath := make([]*node, 0, t.height)
	n := t.root
	depth := 0
	targetDepth := t.height - 1 - level
	for {
		leafPath = append(leafPath, n)
		if depth == targetDepth {
			break
		}
		n = n.chooseSubtree(r)
		depth++
	}
	if subtree == nil {
		n.entries = append(n.entries, e)
	} else {
		n.children = append(n.children, subtree)
	}
	// Fix MBRs/aggregates bottom-up and handle overflow.
	t.adjustPath(leafPath, r, e, subtree, level)
}

func entryRect(e Entry, subtree *node) rect {
	if subtree != nil {
		return subtree.mbr.clone()
	}
	return pointRect(e.Coords)
}

func (t *Tree) adjustPath(path []*node, r rect, e Entry, subtree *node, level int) {
	addSum := e.Value
	addCount := 1
	if subtree != nil {
		addSum = subtree.sum
		addCount = subtree.count
	}
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if n.count == 0 && len(n.entries)+len(n.children) == 1 {
			n.mbr = r.clone()
		} else {
			n.extendMBR(r)
		}
		n.sum += addSum
		n.count += addCount
		if n.fanout() > t.max {
			t.overflow(path, i, level)
			// overflow restructures ancestors; MBR/sum bookkeeping for
			// the remaining ancestors is recomputed inside.
			return
		}
	}
}

func (n *node) fanout() int {
	if n.leaf {
		return len(n.entries)
	}
	return len(n.children)
}

func (n *node) extendMBR(r rect) {
	if n.mbr.lo == nil {
		n.mbr = r.clone()
		return
	}
	n.mbr.extend(r)
}

// chooseSubtree picks the child to descend into: minimum overlap
// enlargement when the children are leaves, minimum area enlargement
// otherwise (ties: smaller area).
func (n *node) chooseSubtree(r rect) *node {
	childrenAreLeaves := len(n.children) > 0 && n.children[0].leaf
	var best *node
	bestOverlap, bestEnl, bestArea := 0.0, 0.0, 0.0
	for _, c := range n.children {
		enl := c.mbr.enlargement(r)
		area := c.mbr.area()
		var ov float64
		if childrenAreLeaves {
			ov = n.overlapEnlargement(c, r)
		}
		better := false
		switch {
		case best == nil:
			better = true
		//histlint:ignore nofloateq R* tie-break heuristic: a ulp difference only shifts which equally-good subtree wins, never correctness
		case childrenAreLeaves && ov != bestOverlap:
			better = ov < bestOverlap
		//histlint:ignore nofloateq R* tie-break heuristic: a ulp difference only shifts which equally-good subtree wins, never correctness
		case enl != bestEnl:
			better = enl < bestEnl
		default:
			better = area < bestArea
		}
		if better {
			best, bestOverlap, bestEnl, bestArea = c, ov, enl, area
		}
	}
	return best
}

// overlapEnlargement computes how much child c's overlap with its
// siblings grows if extended to cover r.
func (n *node) overlapEnlargement(c *node, r rect) float64 {
	grown := c.mbr.clone()
	grown.extend(r)
	before, after := 0.0, 0.0
	for _, s := range n.children {
		if s == c {
			continue
		}
		before += c.mbr.overlap(s.mbr)
		after += grown.overlap(s.mbr)
	}
	return after - before
}

// overflow handles an overflowing node at path[idx]: forced reinsert
// on the first overflow at its level during this insertion, split
// otherwise.
func (t *Tree) overflow(path []*node, idx int, level int) {
	nodeLevel := t.height - 1 - idx // height-from-leaf of path[idx]
	if idx > 0 && !t.reinserted[nodeLevel] {
		t.reinserted[nodeLevel] = true
		t.reinsert(path, idx, nodeLevel)
		return
	}
	t.split(path, idx)
}

// reinsert removes the reinsertN entries furthest from the node's MBR
// center and reinserts them from the top (R* forced reinsertion).
func (t *Tree) reinsert(path []*node, idx, nodeLevel int) {
	n := path[idx]
	type distItem struct {
		d       float64
		entry   Entry
		child   *node
		isChild bool
	}
	var items []distItem
	if n.leaf {
		for _, e := range n.entries {
			items = append(items, distItem{d: n.mbr.centerDist2(pointRect(e.Coords)), entry: e})
		}
	} else {
		for _, c := range n.children {
			items = append(items, distItem{d: n.mbr.centerDist2(c.mbr), child: c, isChild: true})
		}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].d > items[j].d })
	removed := items[:t.reinsertN]
	kept := items[t.reinsertN:]
	if n.leaf {
		n.entries = n.entries[:0]
		for _, it := range kept {
			n.entries = append(n.entries, it.entry)
		}
	} else {
		n.children = n.children[:0]
		for _, it := range kept {
			n.children = append(n.children, it.child)
		}
	}
	n.recompute()
	for i := idx - 1; i >= 0; i-- {
		path[i].recomputeShallow()
	}
	for _, it := range removed {
		if it.isChild {
			t.insertAtLevel(Entry{}, it.child, nodeLevel)
		} else {
			t.insertAtLevel(it.entry, nil, 0)
		}
	}
}

// split performs the R* topological split on path[idx], pushing the
// new sibling into the parent (splitting upward as needed).
func (t *Tree) split(path []*node, idx int) {
	n := path[idx]
	sibling := t.splitNode(n)
	if idx == 0 {
		// Root split: grow the tree.
		newRoot := &node{children: []*node{n, sibling}}
		newRoot.recompute()
		t.root = newRoot
		t.height++
		return
	}
	parent := path[idx-1]
	parent.children = append(parent.children, sibling)
	for i := idx - 1; i >= 0; i-- {
		path[i].recomputeShallow()
		if path[i].fanout() > t.max {
			t.split(path, i)
			return
		}
	}
}

// splitNode divides n's contents per the R* axis/distribution choice
// and returns the new right sibling.
func (t *Tree) splitNode(n *node) *node {
	type item struct {
		r     rect
		entry Entry
		child *node
	}
	var items []item
	if n.leaf {
		for _, e := range n.entries {
			items = append(items, item{r: pointRect(e.Coords), entry: e})
		}
	} else {
		for _, c := range n.children {
			items = append(items, item{r: c.mbr, child: c})
		}
	}
	m := len(items)
	minK, maxK := t.min, m-t.min

	// Choose split axis: minimise the margin sum over all candidate
	// distributions of lower-then-upper sorted orders.
	bestAxis, bestMargin := -1, 0.0
	for axis := 0; axis < t.dim; axis++ {
		sort.SliceStable(items, func(i, j int) bool {
			if items[i].r.lo[axis] != items[j].r.lo[axis] {
				return items[i].r.lo[axis] < items[j].r.lo[axis]
			}
			return items[i].r.hi[axis] < items[j].r.hi[axis]
		})
		margin := 0.0
		for k := minK; k <= maxK; k++ {
			left := items[0].r.clone()
			for _, it := range items[1:k] {
				left.extend(it.r)
			}
			right := items[k].r.clone()
			for _, it := range items[k+1:] {
				right.extend(it.r)
			}
			margin += left.margin() + right.margin()
		}
		if bestAxis < 0 || margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}

	// Choose distribution on the best axis: minimum overlap, tie on
	// minimum combined area.
	axis := bestAxis
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].r.lo[axis] != items[j].r.lo[axis] {
			return items[i].r.lo[axis] < items[j].r.lo[axis]
		}
		return items[i].r.hi[axis] < items[j].r.hi[axis]
	})
	bestK, bestOverlap, bestArea := -1, 0.0, 0.0
	for k := minK; k <= maxK; k++ {
		left := items[0].r.clone()
		for _, it := range items[1:k] {
			left.extend(it.r)
		}
		right := items[k].r.clone()
		for _, it := range items[k+1:] {
			right.extend(it.r)
		}
		ov := left.overlap(right)
		area := left.area() + right.area()
		//histlint:ignore nofloateq split tie-break heuristic: exact equality only selects the secondary criterion, correctness is unaffected
		if bestK < 0 || ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, area
		}
	}

	sibling := &node{leaf: n.leaf}
	if n.leaf {
		n.entries = n.entries[:0]
		for _, it := range items[:bestK] {
			n.entries = append(n.entries, it.entry)
		}
		for _, it := range items[bestK:] {
			sibling.entries = append(sibling.entries, it.entry)
		}
	} else {
		n.children = n.children[:0]
		for _, it := range items[:bestK] {
			n.children = append(n.children, it.child)
		}
		for _, it := range items[bestK:] {
			sibling.children = append(sibling.children, it.child)
		}
	}
	n.recompute()
	sibling.recompute()
	return sibling
}

// recompute rebuilds mbr/sum/count from direct contents.
func (n *node) recompute() {
	n.mbr = rect{}
	n.sum = 0
	n.count = 0
	if n.leaf {
		for _, e := range n.entries {
			n.extendMBR(pointRect(e.Coords))
			n.sum += e.Value
			n.count++
		}
		return
	}
	for _, c := range n.children {
		n.extendMBR(c.mbr)
		n.sum += c.sum
		n.count += c.count
	}
}

// recomputeShallow rebuilds mbr/sum/count assuming children are
// already correct (identical to recompute for internal nodes).
func (n *node) recomputeShallow() { n.recompute() }
