package rstar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"histcube/internal/dims"
)

func randEntries(r *rand.Rand, n, dim, domain int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		c := make([]int, dim)
		for d := range c {
			c[d] = r.Intn(domain)
		}
		es[i] = Entry{Coords: c, Value: float64(r.Intn(9) + 1)}
	}
	return es
}

func naiveSum(es []Entry, b dims.Box) float64 {
	total := 0.0
	for _, e := range es {
		if b.Contains(e.Coords) {
			total += e.Value
		}
	}
	return total
}

func randBox(r *rand.Rand, dim, domain int) dims.Box {
	lo := make([]int, dim)
	hi := make([]int, dim)
	for d := 0; d < dim; d++ {
		lo[d] = r.Intn(domain)
		hi[d] = lo[d] + r.Intn(domain-lo[d])
	}
	return dims.Box{Lo: lo, Hi: hi}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without Dim succeeded")
	}
	if _, err := New(Config{Dim: 2, MaxEntries: 2}); err == nil {
		t.Error("capacity 2 accepted")
	}
	tr, err := New(Config{Dim: 6, PageSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	// Paper geometry: 6-d entries of 28 bytes in 8K pages.
	if tr.MaxEntries() != 8192/28 {
		t.Errorf("MaxEntries = %d, want %d", tr.MaxEntries(), 8192/28)
	}
}

func TestInsertQuerySmall(t *testing.T) {
	tr, _ := New(Config{Dim: 2, MaxEntries: 4})
	es := []Entry{
		{Coords: []int{1, 1}, Value: 2},
		{Coords: []int{5, 5}, Value: 3},
		{Coords: []int{9, 2}, Value: 4},
	}
	for _, e := range es {
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got, err := tr.RangeScan(dims.NewBox([]int{0, 0}, []int{6, 6}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("RangeScan = %v, want 5", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := tr.Insert(Entry{Coords: []int{1}, Value: 1}); err == nil {
		t.Error("wrong-arity insert accepted")
	}
}

func TestInsertManyWithSplitsAndReinserts(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr, _ := New(Config{Dim: 2, MaxEntries: 8})
	es := randEntries(r, 3000, 2, 100)
	for i, e := range es {
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
		if i%500 == 499 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d; expected a multi-level tree", tr.Height())
	}
	for q := 0; q < 100; q++ {
		b := randBox(r, 2, 100)
		want := naiveSum(es, b)
		gs, err := tr.RangeScan(b)
		if err != nil {
			t.Fatal(err)
		}
		ga, err := tr.RangeAggregate(b)
		if err != nil {
			t.Fatal(err)
		}
		if gs != want || ga != want {
			t.Fatalf("box %v: scan %v agg %v want %v", b, gs, ga, want)
		}
	}
}

func TestAggregateCheaperThanScan(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	es := randEntries(r, 5000, 2, 64)
	tr, err := BulkLoad(Config{Dim: 2, MaxEntries: 16}, es)
	if err != nil {
		t.Fatal(err)
	}
	big := dims.NewBox([]int{2, 2}, []int{60, 60})
	tr.LeafReads, tr.NodeReads = 0, 0
	if _, err := tr.RangeScan(big); err != nil {
		t.Fatal(err)
	}
	scanLeaves := tr.LeafReads
	tr.LeafReads, tr.NodeReads = 0, 0
	if _, err := tr.RangeAggregate(big); err != nil {
		t.Fatal(err)
	}
	aggLeaves := tr.LeafReads
	if aggLeaves >= scanLeaves {
		t.Errorf("aggregate read %d leaves, scan %d; augmentation not skipping subtrees", aggLeaves, scanLeaves)
	}
}

func TestBulkLoadPackedAndCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	es := randEntries(r, 4000, 3, 50)
	tr, err := BulkLoad(Config{Dim: 3, MaxEntries: 32}, es)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Packed: leaf count near the minimum possible.
	minLeaves := (4000 + 31) / 32
	if lc := tr.LeafCount(); lc > minLeaves+minLeaves/4 {
		t.Errorf("bulk load produced %d leaves; fully packed would be %d", lc, minLeaves)
	}
	for q := 0; q < 80; q++ {
		b := randBox(r, 3, 50)
		want := naiveSum(es, b)
		got, err := tr.RangeScan(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("box %v: got %v want %v", b, got, want)
		}
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	tr, err := BulkLoad(Config{Dim: 2, MaxEntries: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.RangeScan(dims.NewBox([]int{0, 0}, []int{10, 10}))
	if err != nil || got != 0 {
		t.Errorf("empty tree scan = %v, %v", got, err)
	}
	tr, err = BulkLoad(Config{Dim: 2, MaxEntries: 8}, []Entry{{Coords: []int{3, 4}, Value: 7}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ = tr.RangeScan(dims.NewBox([]int{3, 4}, []int{3, 4}))
	if got != 7 {
		t.Errorf("single entry scan = %v", got)
	}
}

func TestDelete(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tr, _ := New(Config{Dim: 2, MaxEntries: 6})
	es := randEntries(r, 500, 2, 40)
	for _, e := range es {
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	// Delete half, verifying against the naive remainder.
	for i := 0; i < 250; i++ {
		if !tr.Delete(es[i].Coords, es[i].Value) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rest := es[250:]
	for q := 0; q < 50; q++ {
		b := randBox(r, 2, 40)
		got, err := tr.RangeScan(b)
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveSum(rest, b); got != want {
			t.Fatalf("after deletes, box %v: got %v want %v", b, got, want)
		}
	}
	// Deleting a non-existent entry fails.
	if tr.Delete([]int{1000, 1000}, 1) {
		t.Error("deleted non-existent entry")
	}
}

func TestMaxDim0Entry(t *testing.T) {
	tr, _ := New(Config{Dim: 2, MaxEntries: 4})
	if _, ok := tr.MaxDim0Entry(); ok {
		t.Error("MaxDim0Entry on empty tree")
	}
	r := rand.New(rand.NewSource(5))
	maxT := -1
	for i := 0; i < 300; i++ {
		tv := r.Intn(1000)
		if tv > maxT {
			maxT = tv
		}
		if err := tr.Insert(Entry{Coords: []int{tv, r.Intn(10)}, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	e, ok := tr.MaxDim0Entry()
	if !ok || e.Coords[0] != maxT {
		t.Errorf("MaxDim0Entry = %v,%v want coord0 %d", e, ok, maxT)
	}
}

func TestGdRoundTrip(t *testing.T) {
	g, err := NewGd(1)
	if err != nil {
		t.Fatal(err)
	}
	g.Insert(5, []int{2}, 1)
	g.Insert(9, []int{3}, 2)
	g.Insert(7, []int{2}, 3)
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	got, err := g.Query(6, 10, dims.NewBox([]int{0}, []int{9}))
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("Query = %v, want 5", got)
	}
	tv, x, v, ok := g.PopLatest()
	if !ok || tv != 9 || x[0] != 3 || v != 2 {
		t.Errorf("PopLatest = %d %v %v %v", tv, x, v, ok)
	}
	if g.Len() != 2 {
		t.Errorf("Len after pop = %d", g.Len())
	}
}

func TestWalkVisitsAll(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	es := randEntries(r, 200, 2, 30)
	tr, _ := BulkLoad(Config{Dim: 2, MaxEntries: 8}, es)
	n := 0
	tr.Walk(func(Entry) bool { n++; return true })
	if n != 200 {
		t.Errorf("Walk visited %d", n)
	}
	n = 0
	tr.Walk(func(Entry) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("early stop visited %d", n)
	}
}

// Property: dynamic inserts + deletes match a naive shadow and keep
// invariants, across random capacities.
func TestShadowProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, err := New(Config{Dim: 2, MaxEntries: r.Intn(12) + 4})
		if err != nil {
			return false
		}
		var live []Entry
		for op := 0; op < 250; op++ {
			if r.Intn(4) > 0 || len(live) == 0 {
				e := Entry{Coords: []int{r.Intn(20), r.Intn(20)}, Value: float64(r.Intn(5) + 1)}
				if err := tr.Insert(e); err != nil {
					return false
				}
				live = append(live, e)
			} else {
				i := r.Intn(len(live))
				if !tr.Delete(live[i].Coords, live[i].Value) {
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		for q := 0; q < 30; q++ {
			b := randBox(r, 2, 20)
			want := naiveSum(live, b)
			gs, err1 := tr.RangeScan(b)
			ga, err2 := tr.RangeAggregate(b)
			if err1 != nil || err2 != nil || gs != want || ga != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: bulk-loaded trees answer like the naive scan for random
// dimensionalities.
func TestBulkLoadProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := r.Intn(3) + 1
		es := randEntries(r, r.Intn(500)+1, dim, 16)
		tr, err := BulkLoad(Config{Dim: dim, MaxEntries: r.Intn(20) + 4}, es)
		if err != nil {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		for q := 0; q < 20; q++ {
			b := randBox(r, dim, 16)
			got, err := tr.RangeScan(b)
			if err != nil || got != naiveSum(es, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
