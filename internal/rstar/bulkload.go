package rstar

import (
	"math"
	"sort"
)

// BulkLoad builds a packed, query-optimised tree from all entries at
// once using Sort-Tile-Recursive tiling (Leutenegger et al.), the
// stand-in for the Berchtold et al. sort-based bulk load the paper
// cites: both produce fully packed leaves with compact MBRs, which is
// all the Figure 14 leaf-access metric depends on.
func BulkLoad(cfg Config, entries []Entry) (*Tree, error) {
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return t, nil
	}
	es := make([]Entry, len(entries))
	for i, e := range entries {
		es[i] = Entry{Coords: append([]int(nil), e.Coords...), Value: e.Value}
	}
	// Build leaves by tiling the points.
	var leaves []*node
	tile(es, t.dim, 0, t.max, func(chunk []Entry) {
		n := &node{leaf: true, entries: append([]Entry(nil), chunk...)}
		n.recompute()
		leaves = append(leaves, n)
	})
	level := leaves
	height := 1
	for len(level) > 1 {
		var parents []*node
		tileNodes(level, t.dim, 0, t.max, func(chunk []*node) {
			p := &node{children: append([]*node(nil), chunk...)}
			p.recompute()
			parents = append(parents, p)
		})
		level = parents
		height++
	}
	t.root = level[0]
	t.height = height
	t.size = len(es)
	return t, nil
}

// tile recursively sort-tile-partitions entries: slabs along the
// current dimension, recursion on the rest, chunks of cap at the last
// dimension.
func tile(es []Entry, dim, axis, capacity int, emit func([]Entry)) {
	if axis == dim-1 {
		sort.SliceStable(es, func(i, j int) bool { return es[i].Coords[axis] < es[j].Coords[axis] })
		for i := 0; i < len(es); i += capacity {
			j := i + capacity
			if j > len(es) {
				j = len(es)
			}
			emit(es[i:j])
		}
		return
	}
	sort.SliceStable(es, func(i, j int) bool { return es[i].Coords[axis] < es[j].Coords[axis] })
	pages := int(math.Ceil(float64(len(es)) / float64(capacity)))
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dim-axis))))
	if slabs < 1 {
		slabs = 1
	}
	per := int(math.Ceil(float64(len(es)) / float64(slabs)))
	if per < 1 {
		per = 1
	}
	for i := 0; i < len(es); i += per {
		j := i + per
		if j > len(es) {
			j = len(es)
		}
		tile(es[i:j], dim, axis+1, capacity, emit)
	}
}

// tileNodes applies the same tiling to nodes, keyed by MBR centers.
func tileNodes(ns []*node, dim, axis, capacity int, emit func([]*node)) {
	center := func(n *node, a int) int { return n.mbr.lo[a] + n.mbr.hi[a] }
	if axis == dim-1 {
		sort.SliceStable(ns, func(i, j int) bool { return center(ns[i], axis) < center(ns[j], axis) })
		for i := 0; i < len(ns); i += capacity {
			j := i + capacity
			if j > len(ns) {
				j = len(ns)
			}
			emit(ns[i:j])
		}
		return
	}
	sort.SliceStable(ns, func(i, j int) bool { return center(ns[i], axis) < center(ns[j], axis) })
	pages := int(math.Ceil(float64(len(ns)) / float64(capacity)))
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dim-axis))))
	if slabs < 1 {
		slabs = 1
	}
	per := int(math.Ceil(float64(len(ns)) / float64(slabs)))
	if per < 1 {
		per = 1
	}
	for i := 0; i < len(ns); i += per {
		j := i + per
		if j > len(ns) {
			j = len(ns)
		}
		tileNodes(ns[i:j], dim, axis+1, capacity, emit)
	}
}
