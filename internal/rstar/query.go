package rstar

import (
	"fmt"

	"histcube/internal/dims"
)

// RangeScan sums the measures of all entries inside the closed box by
// visiting every intersecting leaf — the paper's Figure 14 cost
// accounting: LeafReads counts leaf accesses; internal nodes are
// assumed resident (NodeReads counts them separately).
func (t *Tree) RangeScan(b dims.Box) (float64, error) {
	r, err := t.boxRect(b)
	if err != nil {
		return 0, err
	}
	return t.scan(t.root, r), nil
}

func (t *Tree) scan(n *node, r rect) float64 {
	t.NodeReads++
	if n.leaf {
		t.LeafReads++
		total := 0.0
		for _, e := range n.entries {
			if r.containsPoint(e.Coords) {
				total += e.Value
			}
		}
		return total
	}
	total := 0.0
	for _, c := range n.children {
		if r.intersects(c.mbr) {
			total += t.scan(c, r)
		}
	}
	return total
}

// RangeAggregate sums the measures over the closed box using the
// aggregate augmentation: subtrees fully contained in the box
// contribute their stored sum without descending.
func (t *Tree) RangeAggregate(b dims.Box) (float64, error) {
	r, err := t.boxRect(b)
	if err != nil {
		return 0, err
	}
	return t.aggregate(t.root, r), nil
}

func (t *Tree) aggregate(n *node, r rect) float64 {
	t.NodeReads++
	if n.mbr.lo != nil && r.containsRect(n.mbr) {
		return n.sum
	}
	if n.leaf {
		t.LeafReads++
		total := 0.0
		for _, e := range n.entries {
			if r.containsPoint(e.Coords) {
				total += e.Value
			}
		}
		return total
	}
	total := 0.0
	for _, c := range n.children {
		if r.intersects(c.mbr) {
			total += t.aggregate(c, r)
		}
	}
	return total
}

func (t *Tree) boxRect(b dims.Box) (rect, error) {
	if len(b.Lo) != t.dim || len(b.Hi) != t.dim {
		return rect{}, fmt.Errorf("rstar: box arity (%d,%d) does not match tree dim %d", len(b.Lo), len(b.Hi), t.dim)
	}
	for i := range b.Lo {
		if b.Lo[i] > b.Hi[i] {
			return rect{}, fmt.Errorf("rstar: box inverted in dimension %d", i)
		}
	}
	return rect{lo: b.Lo, hi: b.Hi}, nil
}

// Delete removes one entry with exactly the given coordinates and
// value, returning false if no such entry exists. Underflowing nodes
// are dissolved and their remaining contents reinserted (the classic
// condense-tree treatment).
func (t *Tree) Delete(coords []int, value float64) bool {
	if len(coords) != t.dim {
		return false
	}
	var orphans []Entry
	removed := t.deleteRec(t.root, coords, value, &orphans)
	if !removed {
		return false
	}
	t.size--
	// Shrink the root if it lost all but one child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	for _, e := range orphans {
		t.reinserted = make(map[int]bool)
		t.insertAtLevel(e, nil, 0)
	}
	return true
}

func (t *Tree) deleteRec(n *node, coords []int, value float64, orphans *[]Entry) bool {
	if n.leaf {
		for i, e := range n.entries {
			//histlint:ignore nofloateq delete matches the identical stored entry bit-for-bit (identity, not arithmetic)
			if e.Value == value && equalCoords(e.Coords, coords) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				n.recompute()
				return true
			}
		}
		return false
	}
	p := pointRect(coords)
	for i, c := range n.children {
		if !c.mbr.containsRect(p) {
			continue
		}
		if t.deleteRec(c, coords, value, orphans) {
			if c.fanout() < t.min {
				// Dissolve the child; collect its leaf entries.
				c.collectEntries(orphans)
				n.children = append(n.children[:i], n.children[i+1:]...)
			}
			n.recompute()
			return true
		}
	}
	return false
}

func (n *node) collectEntries(out *[]Entry) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, c := range n.children {
		c.collectEntries(out)
	}
}

func equalCoords(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MaxDim0Entry returns an entry with the greatest coordinate in
// dimension 0 (used by the out-of-order buffer to drain latest-first).
func (t *Tree) MaxDim0Entry() (Entry, bool) {
	if t.size == 0 {
		return Entry{}, false
	}
	n := t.root
	for !n.leaf {
		best := n.children[0]
		for _, c := range n.children[1:] {
			if c.mbr.hi[0] > best.mbr.hi[0] {
				best = c
			}
		}
		n = best
	}
	bi := 0
	for i, e := range n.entries {
		if e.Coords[0] > n.entries[bi].Coords[0] {
			bi = i
		}
		_ = i
	}
	return n.entries[bi], true
}

// Walk calls fn for every entry (order unspecified); fn returning
// false stops the walk.
func (t *Tree) Walk(fn func(Entry) bool) {
	t.root.walk(fn)
}

func (n *node) walk(fn func(Entry) bool) bool {
	if n.leaf {
		for _, e := range n.entries {
			if !fn(e) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !c.walk(fn) {
			return false
		}
	}
	return true
}

// CheckInvariants validates MBR containment, aggregate sums, fanout
// bounds and uniform leaf depth.
func (t *Tree) CheckInvariants() error {
	sum, count, depth, err := t.root.check(t.max, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rstar: size %d but counted %d entries", t.size, count)
	}
	if depth != t.height {
		return fmt.Errorf("rstar: height %d but leaf depth %d", t.height, depth)
	}
	if t.size > 0 && !feq(sum, t.root.sum) {
		return fmt.Errorf("rstar: root sum %v but computed %v", t.root.sum, sum)
	}
	return nil
}

func feq(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}

func (n *node) check(max int, isRoot bool) (float64, int, int, error) {
	if n.fanout() > max {
		return 0, 0, 0, fmt.Errorf("rstar: node fanout %d exceeds max %d", n.fanout(), max)
	}
	if n.leaf {
		sum := 0.0
		for _, e := range n.entries {
			if !n.mbr.containsPoint(e.Coords) && len(n.entries) > 0 {
				return 0, 0, 0, fmt.Errorf("rstar: leaf MBR misses entry %v", e.Coords)
			}
			sum += e.Value
		}
		if !feq(sum, n.sum) {
			return 0, 0, 0, fmt.Errorf("rstar: leaf sum %v != stored %v", sum, n.sum)
		}
		if n.count != len(n.entries) {
			return 0, 0, 0, fmt.Errorf("rstar: leaf count %d != %d entries", n.count, len(n.entries))
		}
		return sum, len(n.entries), 1, nil
	}
	sum := 0.0
	count := 0
	depth := -1
	for _, c := range n.children {
		if !n.mbr.containsRect(c.mbr) {
			return 0, 0, 0, fmt.Errorf("rstar: child MBR escapes parent")
		}
		s, cn, d, err := c.check(max, false)
		if err != nil {
			return 0, 0, 0, err
		}
		sum += s
		count += cn
		if depth == -1 {
			depth = d
		} else if depth != d {
			return 0, 0, 0, fmt.Errorf("rstar: uneven leaf depth")
		}
	}
	if !feq(sum, n.sum) || count != n.count {
		return 0, 0, 0, fmt.Errorf("rstar: internal aggregate mismatch: sum %v/%v count %d/%d", sum, n.sum, count, n.count)
	}
	return sum, count, depth + 1, nil
}
