package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New(4)
	if tr.Len() != 0 || tr.Sum() != 0 {
		t.Error("empty tree not zeroed")
	}
	if _, ok := tr.Get(5); ok {
		t.Error("Get on empty tree found a key")
	}
	if got := tr.RangeSum(0, 100); got != 0 {
		t.Errorf("RangeSum on empty tree = %v", got)
	}
	if _, ok := tr.Floor(10); ok {
		t.Error("Floor on empty tree found a key")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAddGetUpsert(t *testing.T) {
	tr := New(4)
	tr.Add(10, 3)
	tr.Add(10, 4)
	if v, ok := tr.Get(10); !ok || v != 7 {
		t.Errorf("Get(10) = %v,%v", v, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	tr.Add(10, -7)
	if v, ok := tr.Get(10); !ok || v != 0 {
		t.Errorf("after inverse add: %v,%v (paper: deletes are inverse updates)", v, ok)
	}
}

func TestManyInsertsSplitAndStayOrdered(t *testing.T) {
	tr := New(4)
	r := rand.New(rand.NewSource(1))
	keys := r.Perm(500)
	for _, k := range keys {
		tr.Add(int64(k), float64(k))
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var got []int64
	tr.Ascend(func(k int64, v float64) bool {
		got = append(got, k)
		if v != float64(k) {
			t.Fatalf("key %d has value %v", k, v)
		}
		return true
	})
	if len(got) != 500 {
		t.Fatalf("Ascend visited %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("Ascend out of order")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New(4)
	for i := 0; i < 20; i++ {
		tr.Add(int64(i), 1)
	}
	n := 0
	tr.Ascend(func(int64, float64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestRangeSumExhaustiveSmall(t *testing.T) {
	tr := New(3)
	vals := map[int64]float64{}
	for _, k := range []int64{5, 1, 9, 3, 7, 2, 8, 0, 6, 4} {
		tr.Add(k, float64(k)*2+1)
		vals[k] = float64(k)*2 + 1
	}
	for lo := int64(-2); lo <= 11; lo++ {
		for hi := lo; hi <= 11; hi++ {
			want := 0.0
			for k, v := range vals {
				if k >= lo && k <= hi {
					want += v
				}
			}
			if got := tr.RangeSum(lo, hi); got != want {
				t.Fatalf("RangeSum(%d,%d) = %v, want %v", lo, hi, got, want)
			}
		}
	}
	if got := tr.RangeSum(5, 4); got != 0 {
		t.Errorf("inverted range = %v", got)
	}
}

func TestFloorSemantics(t *testing.T) {
	tr := New(4)
	for _, k := range []int64{10, 20, 30, 40} {
		tr.Add(k, 1)
	}
	cases := []struct {
		key  int64
		want int64
		ok   bool
	}{
		{5, 0, false}, {10, 10, true}, {15, 10, true}, {20, 20, true},
		{39, 30, true}, {40, 40, true}, {1000, 40, true},
	}
	for _, c := range cases {
		got, ok := tr.Floor(c.key)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Floor(%d) = %d,%v want %d,%v", c.key, got, ok, c.want, c.ok)
		}
	}
}

func TestFloorAcrossLeafBoundaries(t *testing.T) {
	// Dense keys force splits; floors of keys just below a leaf's
	// first key must come from the previous leaf.
	tr := New(3)
	for i := 0; i < 200; i += 2 {
		tr.Add(int64(i), 1)
	}
	for i := int64(1); i < 200; i += 2 {
		got, ok := tr.Floor(i)
		if !ok || got != i-1 {
			t.Fatalf("Floor(%d) = %d,%v want %d", i, got, ok, i-1)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Add(int64(i), float64(i))
	}
	c := tr.Clone()
	c.Add(5, 100)
	c.Add(500, 1)
	if v, _ := tr.Get(5); v != 5 {
		t.Errorf("clone mutated original: Get(5) = %v", v)
	}
	if _, ok := tr.Get(500); ok {
		t.Error("clone insert leaked into original")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Clone's leaf chain must be self-contained.
	n := 0
	c.Ascend(func(int64, float64) bool { n++; return true })
	if n != 101 {
		t.Errorf("clone Ascend visited %d, want 101", n)
	}
}

// Property: tree agrees with a map shadow under random adds, for
// random orders, with invariants intact.
func TestShadowProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(r.Intn(8) + 3)
		shadow := map[int64]float64{}
		for op := 0; op < 300; op++ {
			k := int64(r.Intn(100))
			d := float64(r.Intn(21) - 10)
			tr.Add(k, d)
			shadow[k] += d
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		if tr.Len() != len(shadow) {
			return false
		}
		for op := 0; op < 50; op++ {
			lo := int64(r.Intn(110) - 5)
			hi := lo + int64(r.Intn(60))
			want := 0.0
			for k, v := range shadow {
				if k >= lo && k <= hi {
					want += v
				}
			}
			if tr.RangeSum(lo, hi) != want {
				return false
			}
		}
		// Floor agrees with a sorted-scan reference.
		keys := make([]int64, 0, len(shadow))
		for k := range shadow {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for op := 0; op < 30; op++ {
			q := int64(r.Intn(120) - 10)
			i := sort.Search(len(keys), func(i int) bool { return keys[i] > q }) - 1
			got, ok := tr.Floor(q)
			if i < 0 {
				if ok {
					return false
				}
			} else if !ok || got != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
