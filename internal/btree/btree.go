// Package btree implements an in-memory B+ tree over int64 keys with
// per-subtree aggregate sums, so one-dimensional range-sum queries run
// in O(log n). It serves two roles in the reproduction: it is the
// kind of one-dimensional structure R_1 the paper's framework example
// uses ("e.g., a B-tree with location keys", Section 2.2), and it
// backs the sparse time directory of Section 2.3.
//
// Deletions follow the paper's model: inserts and deletes are
// translated to measure updates (Add with a negative delta), so keys
// are never physically removed.
package btree

import "fmt"

// DefaultOrder is the default maximum number of keys per node.
const DefaultOrder = 32

// Tree maps int64 keys to float64 measures and answers range sums.
type Tree struct {
	root  *node
	order int
	size  int
}

type node struct {
	leaf bool
	keys []int64
	vals []float64 // leaf payloads, parallel to keys
	kids []*node   // internal children, len(keys)+1
	sum  float64   // sum of all measures in the subtree
	next *node     // leaf chain for ordered iteration
}

// New returns an empty tree with the given order (maximum keys per
// node); order < 3 selects DefaultOrder.
func New(order int) *Tree {
	if order < 3 {
		order = DefaultOrder
	}
	return &Tree{root: &node{leaf: true}, order: order}
}

// Len returns the number of distinct keys.
func (t *Tree) Len() int { return t.size }

// Sum returns the sum of all measures.
func (t *Tree) Sum() float64 { return t.root.sum }

// Add adds delta to the measure of key, inserting the key with
// measure delta if absent.
func (t *Tree) Add(key int64, delta float64) {
	split, sep := t.root.add(t, key, delta)
	if split != nil {
		newRoot := &node{
			keys: []int64{sep},
			kids: []*node{t.root, split},
			sum:  t.root.sum + split.sum,
		}
		t.root = newRoot
	}
}

// add inserts into n's subtree, returning a new right sibling and the
// separator key if n split.
func (n *node) add(t *Tree, key int64, delta float64) (*node, int64) {
	n.sum += delta
	if n.leaf {
		i := n.search(key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] += delta
			return nil, 0
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = delta
		t.size++
		if len(n.keys) > t.order {
			return n.splitLeaf()
		}
		return nil, 0
	}
	i := n.childIndex(key)
	split, sep := n.kids[i].add(t, key, delta)
	if split == nil {
		return nil, 0
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.kids = append(n.kids, nil)
	copy(n.kids[i+2:], n.kids[i+1:])
	n.kids[i+1] = split
	if len(n.keys) > t.order {
		return n.splitInternal()
	}
	return nil, 0
}

// search returns the first index i with keys[i] >= key.
func (n *node) search(key int64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the child subtree that covers key: child i holds
// keys in [keys[i-1], keys[i]).
func (n *node) childIndex(key int64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (n *node) splitLeaf() (*node, int64) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([]int64(nil), n.keys[mid:]...),
		vals: append([]float64(nil), n.vals[mid:]...),
		next: n.next,
	}
	for _, v := range right.vals {
		right.sum += v
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.sum -= right.sum
	n.next = right
	return right, right.keys[0]
}

func (n *node) splitInternal() (*node, int64) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		keys: append([]int64(nil), n.keys[mid+1:]...),
		kids: append([]*node(nil), n.kids[mid+1:]...),
	}
	for _, k := range right.kids {
		right.sum += k.sum
	}
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	n.sum -= right.sum
	return right, sep
}

// Get returns the measure of key and whether the key exists.
func (t *Tree) Get(key int64) (float64, bool) {
	n := t.root
	for !n.leaf {
		n = n.kids[n.childIndex(key)]
	}
	i := n.search(key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return 0, false
}

// RangeSum returns the sum of measures of all keys in [lo, hi].
func (t *Tree) RangeSum(lo, hi int64) float64 {
	if lo > hi {
		return 0
	}
	return t.root.rangeSum(lo, hi)
}

func (n *node) rangeSum(lo, hi int64) float64 {
	if n.leaf {
		total := 0.0
		for i := n.search(lo); i < len(n.keys) && n.keys[i] <= hi; i++ {
			total += n.vals[i]
		}
		return total
	}
	// Child i covers [keys[i-1], keys[i]); strictly interior children
	// are fully inside [lo, hi] and contribute their aggregate in
	// O(1); only the two boundary children recurse, so the whole query
	// is O(log n).
	total := 0.0
	first := n.childIndex(lo)
	last := n.childIndex(hi)
	for i := first + 1; i < last; i++ {
		total += n.kids[i].sum
	}
	total += n.kids[first].rangeSum(lo, hi)
	if last != first {
		total += n.kids[last].rangeSum(lo, hi)
	}
	return total
}

// Floor returns the greatest key <= key — the time-directory lookup of
// Section 2.3. It runs in O(log n): at most two children are visited
// per level (the key-covering child, then its left sibling when the
// covering subtree holds no key <= key).
func (t *Tree) Floor(key int64) (int64, bool) {
	var best int64
	found := false
	t.root.floorScan(key, &best, &found)
	return best, found
}

func (n *node) floorScan(key int64, best *int64, found *bool) {
	if n.leaf {
		i := n.search(key)
		if i < len(n.keys) && n.keys[i] == key {
			*best, *found = key, true
			return
		}
		if i > 0 {
			*best, *found = n.keys[i-1], true
		}
		return
	}
	for i := n.childIndex(key); i >= 0; i-- {
		n.kids[i].floorScan(key, best, found)
		if *found {
			return
		}
	}
}

// Ascend calls fn for every (key, measure) pair in ascending key
// order, stopping early if fn returns false.
func (t *Tree) Ascend(fn func(key int64, val float64) bool) {
	n := t.root
	for !n.leaf {
		n = n.kids[0]
	}
	for n != nil {
		for i, k := range n.keys {
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	c := &Tree{order: t.order, size: t.size}
	var leaves []*node
	c.root = t.root.clone(&leaves)
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	return c
}

func (n *node) clone(leaves *[]*node) *node {
	c := &node{
		leaf: n.leaf,
		keys: append([]int64(nil), n.keys...),
		sum:  n.sum,
	}
	if n.leaf {
		c.vals = append([]float64(nil), n.vals...)
		*leaves = append(*leaves, c)
		return c
	}
	c.kids = make([]*node, len(n.kids))
	for i, k := range n.kids {
		c.kids[i] = k.clone(leaves)
	}
	return c
}

// CheckInvariants validates structural invariants (key order, subtree
// sums, fanout); tests call it after mutation sequences.
func (t *Tree) CheckInvariants() error {
	_, _, err := t.root.check(t.order, true)
	return err
}

func (n *node) check(order int, isRoot bool) (float64, int, error) {
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return 0, 0, fmt.Errorf("btree: keys out of order at %d", i)
		}
	}
	if len(n.keys) > order {
		return 0, 0, fmt.Errorf("btree: node overflow: %d keys, order %d", len(n.keys), order)
	}
	if n.leaf {
		sum := 0.0
		for _, v := range n.vals {
			sum += v
		}
		//histlint:ignore nofloateq invariant check recomputes the stored sum over the same values in the same order, so exact equality is the invariant
		if sum != n.sum {
			return 0, 0, fmt.Errorf("btree: leaf sum %v != stored %v", sum, n.sum)
		}
		return sum, len(n.keys), nil
	}
	if len(n.kids) != len(n.keys)+1 {
		return 0, 0, fmt.Errorf("btree: internal node has %d kids for %d keys", len(n.kids), len(n.keys))
	}
	sum := 0.0
	count := 0
	for _, k := range n.kids {
		s, c, err := k.check(order, false)
		if err != nil {
			return 0, 0, err
		}
		sum += s
		count += c
	}
	//histlint:ignore nofloateq invariant check recomputes the stored sum over the same values in the same order, so exact equality is the invariant
	if sum != n.sum {
		return 0, 0, fmt.Errorf("btree: internal sum %v != stored %v", sum, n.sum)
	}
	return sum, count, nil
}
