// Package ddc implements the one-dimensional Dynamic Data Cube
// pre-aggregation technique (Geffner et al., EDBT 2000) in the variant
// used by the SIGMOD 2002 paper (Section 3.1): cell N-1 stores the sum
// of the whole vector, the middle of the remaining sub-vector stores
// the sum of its left half measured from the sub-vector's start, and
// the two halves are processed recursively. Every prefix sum P[k] is
// the sum of at most ceil(log2 N)+1 cells (the descent chain), and an
// update touches at most that many cells, balancing query and update
// cost.
//
// The exported index functions (PrefixTerms, UpdateCells, RangeStart)
// are pure; they are shared by the DDC baseline arrays, the eCube
// conversion algorithm and the append-only cube's cache.
package ddc

import (
	"histcube/internal/dims"
	"histcube/internal/molap"
)

// DDC is the Dynamic Data Cube technique. The zero value is ready to
// use.
type DDC struct{}

// Name implements molap.Technique.
func (DDC) Name() string { return "DDC" }

// Aggregate implements molap.Technique: cell k receives
// sum(A[RangeStart(n,k) .. k]).
func (DDC) Aggregate(v []float64) {
	n := len(v)
	if n == 0 {
		return
	}
	p := make([]float64, n)
	run := 0.0
	for i, x := range v {
		run += x
		p[i] = run
	}
	for k := 0; k < n; k++ {
		lo := RangeStart(n, k)
		if lo > 0 {
			v[k] = p[k] - p[lo-1]
		} else {
			v[k] = p[k]
		}
	}
}

// Disaggregate implements molap.Technique, recovering original values
// from DDC values via prefix sums.
func (DDC) Disaggregate(v []float64) {
	n := len(v)
	if n == 0 {
		return
	}
	p := make([]float64, n)
	var terms []molap.Term
	for k := 0; k < n; k++ {
		terms = DDC{}.PrefixTerms(terms[:0], n, k)
		s := 0.0
		for _, t := range terms {
			s += t.Factor * v[t.Index]
		}
		p[k] = s
	}
	v[0] = p[0]
	for k := n - 1; k >= 1; k-- {
		v[k] = p[k] - p[k-1]
	}
}

// PrefixTerms implements molap.Technique: the descent chain whose cell
// values sum to P[k]. All factors are +1. Terms are appended in
// descent order (top of the hierarchy first), which QueryTerms relies
// on for cancellation.
func (DDC) PrefixTerms(dst []molap.Term, n, k int) []molap.Term {
	if k == n-1 {
		return append(dst, molap.Term{Index: n - 1, Factor: 1})
	}
	lo, hi := 0, n-2
	for {
		mid := (lo + hi) / 2
		switch {
		case k == mid:
			return append(dst, molap.Term{Index: mid, Factor: 1})
		case k < mid:
			hi = mid - 1
		default:
			dst = append(dst, molap.Term{Index: mid, Factor: 1})
			lo = mid + 1
		}
	}
}

// QueryTerms implements molap.Technique. It computes the chains for
// P[u] and P[l-1] and cancels their common leading cells — the
// "direct approach" of DDC that the paper contrasts with eCube's
// two-prefix reduction (Section 5).
func (DDC) QueryTerms(dst []molap.Term, n, l, u int) []molap.Term {
	if l == 0 {
		return DDC{}.PrefixTerms(dst, n, u)
	}
	pu := DDC{}.PrefixTerms(nil, n, u)
	pl := DDC{}.PrefixTerms(nil, n, l-1)
	i := 0
	for i < len(pu) && i < len(pl) && pu[i].Index == pl[i].Index {
		i++
	}
	dst = append(dst, pu[i:]...)
	for _, t := range pl[i:] {
		dst = append(dst, molap.Term{Index: t.Index, Factor: -1})
	}
	return dst
}

// UpdateCells implements molap.Technique: all cells whose covered
// range [RangeStart..index] contains original index i. Cell n-1 always
// qualifies.
func (DDC) UpdateCells(dst []int, n, i int) []int {
	dst = append(dst, n-1)
	lo, hi := 0, n-2
	for lo <= hi && i <= hi {
		mid := (lo + hi) / 2
		if i <= mid {
			dst = append(dst, mid)
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return dst
}

// RangeStart returns the start of the range covered by DDC cell k in a
// vector of length n: cell k stores sum(A[RangeStart(n,k) .. k]).
func RangeStart(n, k int) int {
	if k == n-1 {
		return 0
	}
	lo, hi := 0, n-2
	for {
		mid := (lo + hi) / 2
		switch {
		case k == mid:
			return lo
		case k < mid:
			hi = mid - 1
		default:
			lo = mid + 1
		}
	}
}

// MaxChainLen returns the worst-case number of cells in a prefix chain
// for a vector of length n — the log2 N bound of the paper.
func MaxChainLen(n int) int {
	if n <= 1 {
		return 1
	}
	// The worst chain descends the sub-hierarchy over cells [0, n-2];
	// each step keeps at most the right half: span -> floor(span/2).
	depth := 0
	span := n - 1
	for span > 0 {
		depth++
		span /= 2
	}
	return depth
}

// NewArray returns an all-zero d-dimensional DDC array.
func NewArray(shape dims.Shape) (*molap.Array, error) {
	return molap.New(shape, Uniform(len(shape)))
}

// FromDense pre-aggregates a dense original array with DDC in every
// dimension.
func FromDense(data []float64, shape dims.Shape) (*molap.Array, error) {
	return molap.FromDense(data, shape, Uniform(len(shape)))
}

// Uniform returns d copies of the DDC technique, for mixed-technique
// arrays built via molap.New.
func Uniform(d int) []molap.Technique {
	ts := make([]molap.Technique, d)
	for i := range ts {
		ts[i] = DDC{}
	}
	return ts
}
