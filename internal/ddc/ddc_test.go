package ddc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"histcube/internal/dims"
	"histcube/internal/molap"
)

// TestFigure4Example reproduces the paper's Figure 4: an original
// array of eight ones yields D = [1 2 1 4 1 2 1 8], and
// q(2,6) = P[6] - P[1] = (D[3]+D[5]+D[6]) - D[1].
func TestFigure4Example(t *testing.T) {
	v := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	DDC{}.Aggregate(v)
	want := []float64{1, 2, 1, 4, 1, 2, 1, 8}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("D[%d] = %v, want %v", i, v[i], want[i])
		}
	}
	p6 := DDC{}.PrefixTerms(nil, 8, 6)
	wantIdx := []int{3, 5, 6}
	if len(p6) != 3 {
		t.Fatalf("PrefixTerms(8,6) = %v", p6)
	}
	for i, tm := range p6 {
		if tm.Index != wantIdx[i] || tm.Factor != 1 {
			t.Fatalf("PrefixTerms(8,6)[%d] = %+v", i, tm)
		}
	}
	p1 := DDC{}.PrefixTerms(nil, 8, 1)
	if len(p1) != 1 || p1[0].Index != 1 {
		t.Fatalf("PrefixTerms(8,1) = %v", p1)
	}
	got := 0.0
	for _, tm := range (DDC{}).QueryTerms(nil, 8, 2, 6) {
		got += tm.Factor * v[tm.Index]
	}
	if got != 5 {
		t.Fatalf("q(2,6) = %v, want 5", got)
	}
}

func TestAggregateCellSemantics(t *testing.T) {
	// Every DDC cell k must equal sum(A[RangeStart..k]).
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 100} {
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(r.Intn(10))
		}
		d := append([]float64(nil), a...)
		DDC{}.Aggregate(d)
		for k := 0; k < n; k++ {
			lo := RangeStart(n, k)
			want := 0.0
			for i := lo; i <= k; i++ {
				want += a[i]
			}
			if d[k] != want {
				t.Fatalf("n=%d: D[%d] = %v, want sum A[%d..%d] = %v", n, k, d[k], lo, k, want)
			}
		}
	}
}

func TestAggregateDisaggregateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 8, 13, 64, 100} {
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(r.Intn(20) - 10)
		}
		v := append([]float64(nil), a...)
		DDC{}.Aggregate(v)
		DDC{}.Disaggregate(v)
		for i := range v {
			if v[i] != a[i] {
				t.Fatalf("n=%d round trip[%d] = %v, want %v", n, i, v[i], a[i])
			}
		}
	}
	DDC{}.Aggregate(nil)
	DDC{}.Disaggregate(nil)
}

func TestPrefixTermsExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 4, 6, 8, 9, 15, 16, 17, 33} {
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(r.Intn(10))
		}
		d := append([]float64(nil), a...)
		DDC{}.Aggregate(d)
		run := 0.0
		maxLen := MaxChainLen(n)
		for k := 0; k < n; k++ {
			run += a[k]
			terms := DDC{}.PrefixTerms(nil, n, k)
			if len(terms) > maxLen {
				t.Fatalf("n=%d: chain for P[%d] has %d terms, bound %d", n, k, len(terms), maxLen)
			}
			got := 0.0
			for _, tm := range terms {
				if tm.Factor != 1 {
					t.Fatalf("prefix factor %v != 1", tm.Factor)
				}
				got += d[tm.Index]
			}
			if got != run {
				t.Fatalf("n=%d: P[%d] = %v, want %v", n, k, got, run)
			}
		}
	}
}

func TestQueryTermsExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 5, 8, 9, 16, 21} {
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(r.Intn(10))
		}
		d := append([]float64(nil), a...)
		DDC{}.Aggregate(d)
		for l := 0; l < n; l++ {
			for u := l; u < n; u++ {
				want := 0.0
				for i := l; i <= u; i++ {
					want += a[i]
				}
				terms := DDC{}.QueryTerms(nil, n, l, u)
				got := 0.0
				seen := map[int]bool{}
				for _, tm := range terms {
					got += tm.Factor * d[tm.Index]
					if seen[tm.Index] {
						t.Fatalf("n=%d q(%d,%d): index %d not cancelled", n, l, u, tm.Index)
					}
					seen[tm.Index] = true
				}
				if got != want {
					t.Fatalf("n=%d: q(%d,%d) = %v, want %v", n, l, u, got, want)
				}
			}
		}
	}
}

func TestUpdateCellsExhaustive(t *testing.T) {
	// Updating A[i] by delta through UpdateCells must equal
	// re-aggregating the updated original, for every i.
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 4, 7, 8, 9, 16, 19} {
		for i := 0; i < n; i++ {
			a := make([]float64, n)
			for j := range a {
				a[j] = float64(r.Intn(10))
			}
			d := append([]float64(nil), a...)
			DDC{}.Aggregate(d)
			cells := DDC{}.UpdateCells(nil, n, i)
			if len(cells) > MaxChainLen(n)+1 {
				t.Fatalf("n=%d: update to %d touches %d cells, bound %d", n, i, len(cells), MaxChainLen(n)+1)
			}
			for _, c := range cells {
				d[c] += 3
			}
			a[i] += 3
			want := append([]float64(nil), a...)
			DDC{}.Aggregate(want)
			for k := range d {
				if d[k] != want[k] {
					t.Fatalf("n=%d update %d: cell %d = %v, want %v", n, i, k, d[k], want[k])
				}
			}
		}
	}
}

func TestRangeStartConsistency(t *testing.T) {
	// RangeStart(n, k) must be the unique lo with: cell k's prefix
	// chain minus cell k's parent chains covers exactly [lo..k].
	// Direct check: P[k] - P[lo-1] must equal D[k] on a random vector.
	r := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 4, 8, 11, 16, 30} {
		a := make([]float64, n)
		p := make([]float64, n)
		run := 0.0
		for i := range a {
			a[i] = float64(r.Intn(10))
			run += a[i]
			p[i] = run
		}
		d := append([]float64(nil), a...)
		DDC{}.Aggregate(d)
		for k := 0; k < n; k++ {
			lo := RangeStart(n, k)
			if lo < 0 || lo > k {
				t.Fatalf("RangeStart(%d,%d) = %d out of [0,%d]", n, k, lo, k)
			}
			want := p[k]
			if lo > 0 {
				want -= p[lo-1]
			}
			if d[k] != want {
				t.Fatalf("n=%d: D[%d] = %v, want %v (lo=%d)", n, k, d[k], want, lo)
			}
		}
		if RangeStart(n, n-1) != 0 {
			t.Fatalf("RangeStart(%d, n-1) != 0", n)
		}
	}
}

func TestMultiDimDDCMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	shape := dims.Shape{9, 7, 5}
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = float64(r.Intn(6))
	}
	a, err := FromDense(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 120; trial++ {
		lo := make([]int, 3)
		hi := make([]int, 3)
		for i, n := range shape {
			lo[i] = r.Intn(n)
			hi[i] = lo[i] + r.Intn(n-lo[i])
		}
		b := dims.Box{Lo: lo, Hi: hi}
		got, err := a.Query(b)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		b.Iter(func(x []int) { want += data[shape.Flatten(x)] })
		if got != want {
			t.Fatalf("Query(%v) = %v, want %v", b, got, want)
		}
	}
}

func TestMultiDimCostBounds(t *testing.T) {
	shape := dims.Shape{64, 64}
	a, _ := NewArray(shape)
	r := rand.New(rand.NewSource(8))
	qBound := int64(2 * MaxChainLen(64) * 2 * MaxChainLen(64))
	uBound := int64((MaxChainLen(64) + 1) * (MaxChainLen(64) + 1))
	for trial := 0; trial < 60; trial++ {
		lo := []int{r.Intn(64), r.Intn(64)}
		hi := []int{lo[0] + r.Intn(64-lo[0]), lo[1] + r.Intn(64-lo[1])}
		a.Accesses = 0
		if _, err := a.Query(dims.Box{Lo: lo, Hi: hi}); err != nil {
			t.Fatal(err)
		}
		if a.Accesses > qBound {
			t.Fatalf("DDC query cost %d exceeds bound %d", a.Accesses, qBound)
		}
		a.Accesses = 0
		a.Update([]int{r.Intn(64), r.Intn(64)}, 1)
		if a.Accesses > uBound {
			t.Fatalf("DDC update cost %d exceeds bound %d", a.Accesses, uBound)
		}
	}
}

func TestMaxChainLen(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 1024: 10}
	for n, want := range cases {
		if got := MaxChainLen(n); got != want {
			t.Errorf("MaxChainLen(%d) = %d, want %d", n, got, want)
		}
	}
	// The bound must hold for every k across a spread of sizes.
	for n := 1; n <= 200; n++ {
		bound := MaxChainLen(n)
		for k := 0; k < n; k++ {
			if got := len(DDC{}.PrefixTerms(nil, n, k)); got > bound {
				t.Fatalf("n=%d k=%d: chain len %d > bound %d", n, k, got, bound)
			}
		}
	}
}

// Property: DDC range query equals naive on random vectors/ranges.
func TestRangeEqualsNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(60) + 1
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(r.Intn(20) - 10)
		}
		d := append([]float64(nil), a...)
		DDC{}.Aggregate(d)
		l := r.Intn(n)
		u := l + r.Intn(n-l)
		want := 0.0
		for i := l; i <= u; i++ {
			want += a[i]
		}
		got := 0.0
		for _, tm := range (DDC{}).QueryTerms(nil, n, l, u) {
			got += tm.Factor * d[tm.Index]
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: random interleaved updates and queries on a 2-d DDC array
// agree with a naive shadow.
func TestShadowProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := dims.Shape{r.Intn(9) + 1, r.Intn(9) + 1}
		a, err := NewArray(shape)
		if err != nil {
			return false
		}
		shadow := make([]float64, shape.Size())
		for op := 0; op < 40; op++ {
			if r.Intn(2) == 0 {
				x := []int{r.Intn(shape[0]), r.Intn(shape[1])}
				d := float64(r.Intn(9) - 4)
				a.Update(x, d)
				shadow[shape.Flatten(x)] += d
			} else {
				lo := []int{r.Intn(shape[0]), r.Intn(shape[1])}
				hi := []int{lo[0] + r.Intn(shape[0]-lo[0]), lo[1] + r.Intn(shape[1]-lo[1])}
				b := dims.Box{Lo: lo, Hi: hi}
				got, err := a.Query(b)
				if err != nil {
					return false
				}
				want := 0.0
				b.Iter(func(x []int) { want += shadow[shape.Flatten(x)] })
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestTechniqueInterface(t *testing.T) {
	var _ molap.Technique = DDC{}
	if (DDC{}).Name() != "DDC" {
		t.Errorf("Name() = %q", DDC{}.Name())
	}
}
