package molap_test

// Mixed-technique arrays: the paper's Figure 5 combination (PS along
// the TT-dimension, DDC along the others) built statically through the
// molap combination machinery, validated against naive sums.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"histcube/internal/ddc"
	"histcube/internal/dims"
	"histcube/internal/molap"
	"histcube/internal/prefix"
)

func TestFigure5PSxDDCCombination(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	shape := dims.Shape{12, 9, 7} // time x two slice dims
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = float64(r.Intn(8))
	}
	a, err := molap.FromDense(data, shape, []molap.Technique{prefix.PS{}, ddc.DDC{}, ddc.DDC{}})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		lo := make([]int, 3)
		hi := make([]int, 3)
		for i, n := range shape {
			lo[i] = r.Intn(n)
			hi[i] = lo[i] + r.Intn(n-lo[i])
		}
		b := dims.Box{Lo: lo, Hi: hi}
		got, err := a.Query(b)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		b.Iter(func(x []int) { want += data[shape.Flatten(x)] })
		if got != want {
			t.Fatalf("PSxDDCxDDC Query(%v) = %v, want %v", b, got, want)
		}
	}
	// A prefix time query (half-open in time) costs 1 cell in the time
	// dimension times the DDC chains in the others.
	a.Accesses = 0
	if _, err := a.Query(dims.NewBox([]int{0, 2, 3}, []int{7, 5, 6})); err != nil {
		t.Fatal(err)
	}
	bound := int64(1 * 2 * ddc.MaxChainLen(9) * 2 * ddc.MaxChainLen(7))
	if a.Accesses > bound {
		t.Errorf("prefix-time query cost %d exceeds PSxDDC bound %d", a.Accesses, bound)
	}
}

// Property: any random assignment of {Raw, PS, DDC} to dimensions
// yields correct range sums under interleaved updates.
func TestRandomTechniqueMixProperty(t *testing.T) {
	techs := []molap.Technique{molap.Raw{}, prefix.PS{}, ddc.DDC{}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := r.Intn(3) + 1
		shape := make(dims.Shape, d)
		mix := make([]molap.Technique, d)
		for i := range shape {
			shape[i] = r.Intn(8) + 1
			mix[i] = techs[r.Intn(len(techs))]
		}
		a, err := molap.New(shape, mix)
		if err != nil {
			return false
		}
		shadow := make([]float64, shape.Size())
		x := make([]int, d)
		for op := 0; op < 40; op++ {
			if r.Intn(2) == 0 {
				for i, n := range shape {
					x[i] = r.Intn(n)
				}
				delta := float64(r.Intn(9) - 4)
				a.Update(x, delta)
				shadow[shape.Flatten(x)] += delta
			} else {
				lo := make([]int, d)
				hi := make([]int, d)
				for i, n := range shape {
					lo[i] = r.Intn(n)
					hi[i] = lo[i] + r.Intn(n-lo[i])
				}
				b := dims.Box{Lo: lo, Hi: hi}
				got, err := a.Query(b)
				if err != nil {
					return false
				}
				want := 0.0
				b.Iter(func(y []int) { want += shadow[shape.Flatten(y)] })
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
