// Package molap implements the multidimensional pre-aggregation
// machinery of Riedewald et al. (ICDT 2001) that Section 3.1 of the
// SIGMOD 2002 paper builds on: a one-dimensional pre-aggregation
// technique is chosen per dimension, applied to every one-dimensional
// vector along that dimension, and query/update index sets are
// combined across dimensions by cross product.
//
// The package provides the Technique interface, the identity (Raw)
// technique, and the generic pre-aggregated Array. Concrete techniques
// live in internal/prefix (Prefix Sum, PS) and internal/ddc (Dynamic
// Data Cube, DDC).
package molap

import (
	"fmt"

	"histcube/internal/dims"
	"histcube/internal/trace"
)

// Term is one cell contribution to a range aggregate: the value stored
// at Index is multiplied by Factor (+1 or -1 for the techniques in
// this repository) and summed.
type Term struct {
	Index  int
	Factor float64
}

// Technique is a one-dimensional pre-aggregation scheme over vectors
// of length n. Implementations must be stateless: all methods are pure
// functions of (n, indices).
type Technique interface {
	// Name identifies the technique in diagnostics ("RAW", "PS", "DDC").
	Name() string
	// Aggregate transforms v in place from original values to
	// pre-aggregated values.
	Aggregate(v []float64)
	// Disaggregate is the inverse of Aggregate.
	Disaggregate(v []float64)
	// PrefixTerms appends to dst the terms whose weighted sum over the
	// pre-aggregated vector equals the prefix sum P[k] = sum(A[0..k]),
	// and returns the extended slice.
	PrefixTerms(dst []Term, n, k int) []Term
	// QueryTerms appends the terms for the range sum over [l, u]
	// (bounds included), with any cell that a naive P[u] - P[l-1]
	// combination would both add and subtract already cancelled.
	QueryTerms(dst []Term, n, l, u int) []Term
	// UpdateCells appends the indices of pre-aggregated cells whose
	// value changes by delta when original cell i changes by delta.
	UpdateCells(dst []int, n, i int) []int
}

// Raw is the identity technique: no pre-aggregation. Queries over a
// range of length r access r cells; updates access one cell.
type Raw struct{}

// Name implements Technique.
func (Raw) Name() string { return "RAW" }

// Aggregate implements Technique (identity).
func (Raw) Aggregate([]float64) {}

// Disaggregate implements Technique (identity).
func (Raw) Disaggregate([]float64) {}

// PrefixTerms implements Technique: P[k] touches cells 0..k.
func (Raw) PrefixTerms(dst []Term, _ int, k int) []Term {
	for i := 0; i <= k; i++ {
		dst = append(dst, Term{Index: i, Factor: 1})
	}
	return dst
}

// QueryTerms implements Technique: the range touches cells l..u.
func (Raw) QueryTerms(dst []Term, _ int, l, u int) []Term {
	for i := l; i <= u; i++ {
		dst = append(dst, Term{Index: i, Factor: 1})
	}
	return dst
}

// UpdateCells implements Technique: only cell i changes.
func (Raw) UpdateCells(dst []int, _ int, i int) []int {
	return append(dst, i)
}

// Array is a d-dimensional array whose cells hold values
// pre-aggregated with one Technique per dimension. It is the
// building block for the PS and DDC baselines of the paper's
// evaluation and for the time slices of the append-only cube.
//
// Accesses counts every cell read or write performed by Query,
// PrefixQuery and Update; it is the paper's cost metric.
type Array struct {
	shape    dims.Shape
	techs    []Technique
	cells    []float64
	Accesses int64
}

// New returns an all-zero pre-aggregated array (the pre-aggregation of
// an all-zero original array is zero for every linear technique).
func New(shape dims.Shape, techs []Technique) (*Array, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if len(techs) != len(shape) {
		return nil, fmt.Errorf("molap: %d techniques for %d dimensions", len(techs), len(shape))
	}
	return &Array{
		shape: shape.Clone(),
		techs: append([]Technique(nil), techs...),
		cells: make([]float64, shape.Size()),
	}, nil
}

// FromDense pre-aggregates a dense original array (row-major, length
// shape.Size()). The input slice is copied.
func FromDense(data []float64, shape dims.Shape, techs []Technique) (*Array, error) {
	a, err := New(shape, techs)
	if err != nil {
		return nil, err
	}
	if len(data) != shape.Size() {
		return nil, fmt.Errorf("molap: data length %d does not match shape size %d", len(data), shape.Size())
	}
	copy(a.cells, data)
	a.aggregateAll()
	return a, nil
}

// aggregateAll applies each dimension's technique to every 1-d vector
// along that dimension, transforming original values into
// pre-aggregated values in place.
func (a *Array) aggregateAll() {
	a.eachVector(func(dim int, v []float64, gather, scatter func([]float64)) {
		gather(v)
		a.techs[dim].Aggregate(v)
		scatter(v)
	})
}

// disaggregateAll is the inverse of aggregateAll; dimensions are
// processed in reverse order so each technique sees exactly the state
// its Aggregate produced.
func (a *Array) disaggregateAll() {
	for dim := len(a.shape) - 1; dim >= 0; dim-- {
		a.eachVectorOf(dim, func(v []float64, gather, scatter func([]float64)) {
			gather(v)
			a.techs[dim].Disaggregate(v)
			scatter(v)
		})
	}
}

// eachVector visits dimensions in increasing order.
func (a *Array) eachVector(fn func(dim int, v []float64, gather, scatter func([]float64))) {
	for dim := range a.shape {
		d := dim
		a.eachVectorOf(d, func(v []float64, gather, scatter func([]float64)) {
			fn(d, v, gather, scatter)
		})
	}
}

// eachVectorOf visits every 1-d vector along dimension dim. The
// callback receives a scratch vector plus gather/scatter closures that
// copy the vector out of and back into the flat cell storage.
func (a *Array) eachVectorOf(dim int, fn func(v []float64, gather, scatter func([]float64))) {
	n := a.shape[dim]
	strides := a.shape.Strides()
	stride := strides[dim]
	v := make([]float64, n)
	// Iterate over all coordinates with dimension dim fixed at 0.
	outer := a.shape.Clone()
	outer[dim] = 1
	dims.FullBox(outer).Iter(func(x []int) {
		base := 0
		for i, c := range x {
			base += c * strides[i]
		}
		gather := func(v []float64) {
			for i := 0; i < n; i++ {
				v[i] = a.cells[base+i*stride]
			}
		}
		scatter := func(v []float64) {
			for i := 0; i < n; i++ {
				a.cells[base+i*stride] = v[i]
			}
		}
		fn(v, gather, scatter)
	})
}

// Shape returns the array's shape (caller must not modify it).
func (a *Array) Shape() dims.Shape { return a.shape }

// Techniques returns the per-dimension techniques (caller must not
// modify the slice).
func (a *Array) Techniques() []Technique { return a.techs }

// Cells exposes the raw pre-aggregated cell storage. It is used by the
// eCube construction, which re-interprets a DDC array's cells, and by
// the disk layout code; ordinary callers should use Query/Update.
func (a *Array) Cells() []float64 { return a.cells }

// CellAt reads one pre-aggregated cell without cost accounting.
func (a *Array) CellAt(x []int) float64 { return a.cells[a.shape.Flatten(x)] }

// Clone returns a deep copy (cost counter reset).
func (a *Array) Clone() *Array {
	c := &Array{
		shape: a.shape.Clone(),
		techs: append([]Technique(nil), a.techs...),
		cells: append([]float64(nil), a.cells...),
	}
	return c
}

// Dense returns the original (disaggregated) array values, leaving the
// receiver unchanged.
func (a *Array) Dense() []float64 {
	c := a.Clone()
	c.disaggregateAll()
	return c.cells
}

// Update adds delta to original cell x by adjusting every
// pre-aggregated cell that covers it: the cross product of the
// per-dimension UpdateCells index sets.
func (a *Array) Update(x []int, delta float64) {
	if !a.shape.Contains(x) {
		panic(fmt.Sprintf("molap: update coordinate %v outside shape %v", x, a.shape))
	}
	sets := make([][]int, len(a.shape))
	for d, t := range a.techs {
		sets[d] = t.UpdateCells(nil, a.shape[d], x[d])
	}
	strides := a.shape.Strides()
	dims.CrossProduct(sets, func(combo []int) {
		off := 0
		for i, c := range combo {
			off += c * strides[i]
		}
		a.cells[off] += delta
		a.Accesses++
	})
}

// UpdateCost returns the number of cells Update(x, ·) touches without
// performing the update.
func (a *Array) UpdateCost(x []int) int {
	n := 1
	for d, t := range a.techs {
		n *= len(t.UpdateCells(nil, a.shape[d], x[d]))
	}
	return n
}

// Query computes the aggregate over the closed box by combining the
// per-dimension QueryTerms via cross product, multiplying factors.
func (a *Array) Query(b dims.Box) (float64, error) {
	return a.QueryTraced(nil, b)
}

// QueryTraced is Query with per-request cost attribution: the cells
// combined for this one query are added to sp's CellsTouched counter
// (pre-aggregated arrays never convert, so no other counter moves).
// A nil span records nothing.
func (a *Array) QueryTraced(sp *trace.Span, b dims.Box) (float64, error) {
	before := a.Accesses
	v, err := a.query(b)
	sp.Add(trace.CellsTouched, a.Accesses-before)
	return v, err
}

func (a *Array) query(b dims.Box) (float64, error) {
	if err := b.Validate(a.shape); err != nil {
		return 0, err
	}
	sets := make([][]Term, len(a.shape))
	for d, t := range a.techs {
		sets[d] = t.QueryTerms(nil, a.shape[d], b.Lo[d], b.Hi[d])
		if len(sets[d]) == 0 {
			// A technique may report an empty term set when the range
			// contribution is exactly zero (cannot happen for the
			// closed in-bounds boxes validated above, but keep the
			// result well-defined).
			return 0, nil
		}
	}
	return a.combineTerms(sets), nil
}

// PrefixQuery computes P[x] = aggregate over the box [0..x] in every
// dimension, using the per-dimension PrefixTerms.
func (a *Array) PrefixQuery(x []int) float64 {
	sets := make([][]Term, len(a.shape))
	for d, t := range a.techs {
		sets[d] = t.PrefixTerms(nil, a.shape[d], x[d])
	}
	return a.combineTerms(sets)
}

func (a *Array) combineTerms(sets [][]Term) float64 {
	idxSets := make([][]int, len(sets))
	for d, s := range sets {
		idx := make([]int, len(s))
		for i := range s {
			idx[i] = i
		}
		idxSets[d] = idx
	}
	strides := a.shape.Strides()
	total := 0.0
	dims.CrossProduct(idxSets, func(combo []int) {
		off := 0
		f := 1.0
		for d, i := range combo {
			term := sets[d][i]
			off += term.Index * strides[d]
			f *= term.Factor
		}
		total += f * a.cells[off]
		a.Accesses++
	})
	return total
}
