package molap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"histcube/internal/dims"
)

func naiveRange(data []float64, shape dims.Shape, b dims.Box) float64 {
	total := 0.0
	b.Iter(func(x []int) {
		total += data[shape.Flatten(x)]
	})
	return total
}

func randBox(r *rand.Rand, s dims.Shape) dims.Box {
	lo := make([]int, len(s))
	hi := make([]int, len(s))
	for i, n := range s {
		lo[i] = r.Intn(n)
		hi[i] = lo[i] + r.Intn(n-lo[i])
	}
	return dims.Box{Lo: lo, Hi: hi}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(dims.Shape{}, nil); err == nil {
		t.Error("New with empty shape succeeded")
	}
	if _, err := New(dims.Shape{4}, []Technique{Raw{}, Raw{}}); err == nil {
		t.Error("New with mismatched technique count succeeded")
	}
	if _, err := FromDense([]float64{1, 2}, dims.Shape{3}, []Technique{Raw{}}); err == nil {
		t.Error("FromDense with wrong data length succeeded")
	}
}

func TestRawArrayMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	shape := dims.Shape{5, 6}
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = float64(r.Intn(10))
	}
	a, err := FromDense(data, shape, []Technique{Raw{}, Raw{}})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		b := randBox(r, shape)
		got, err := a.Query(b)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveRange(data, shape, b)
		if got != want {
			t.Fatalf("Query(%v) = %v, want %v", b, got, want)
		}
	}
}

func TestRawUpdateTouchesOneCell(t *testing.T) {
	a, _ := New(dims.Shape{4, 4}, []Technique{Raw{}, Raw{}})
	a.Accesses = 0
	a.Update([]int{1, 2}, 5)
	if a.Accesses != 1 {
		t.Errorf("raw update touched %d cells, want 1", a.Accesses)
	}
	got, _ := a.Query(dims.NewBox([]int{1, 2}, []int{1, 2}))
	if got != 5 {
		t.Errorf("point query = %v, want 5", got)
	}
}

func TestQueryRejectsInvalidBox(t *testing.T) {
	a, _ := New(dims.Shape{4}, []Technique{Raw{}})
	if _, err := a.Query(dims.NewBox([]int{2}, []int{1})); err == nil {
		t.Error("inverted box accepted")
	}
	if _, err := a.Query(dims.NewBox([]int{0}, []int{4})); err == nil {
		t.Error("out-of-range box accepted")
	}
}

func TestUpdatePanicsOutsideShape(t *testing.T) {
	a, _ := New(dims.Shape{4}, []Technique{Raw{}})
	defer func() {
		if recover() == nil {
			t.Error("update outside shape did not panic")
		}
	}()
	a.Update([]int{4}, 1)
}

func TestCloneIsIndependent(t *testing.T) {
	a, _ := New(dims.Shape{3}, []Technique{Raw{}})
	a.Update([]int{0}, 1)
	c := a.Clone()
	c.Update([]int{0}, 10)
	got, _ := a.Query(dims.NewBox([]int{0}, []int{0}))
	if got != 1 {
		t.Errorf("clone shares storage: original reads %v", got)
	}
}

func TestDenseRoundTripRaw(t *testing.T) {
	data := []float64{3, 1, 4, 1, 5, 9}
	a, _ := FromDense(data, dims.Shape{2, 3}, []Technique{Raw{}, Raw{}})
	got := a.Dense()
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("Dense()[%d] = %v, want %v", i, got[i], data[i])
		}
	}
}

func TestPrefixQueryEqualsBoxQuery(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	shape := dims.Shape{4, 5}
	data := make([]float64, shape.Size())
	for i := range data {
		data[i] = float64(r.Intn(5))
	}
	a, _ := FromDense(data, shape, []Technique{Raw{}, Raw{}})
	dims.FullBox(shape).Iter(func(x []int) {
		p := a.PrefixQuery(x)
		want := naiveRange(data, shape, dims.NewBox([]int{0, 0}, x))
		if p != want {
			t.Fatalf("PrefixQuery(%v) = %v, want %v", x, p, want)
		}
	})
}

// Property: updates followed by queries agree with a naive shadow
// array, for random update/query interleavings on a Raw array (the
// combination machinery itself, independent of any technique).
func TestUpdateQueryAgainstShadowProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := dims.Shape{r.Intn(4) + 1, r.Intn(4) + 1}
		a, err := New(shape, []Technique{Raw{}, Raw{}})
		if err != nil {
			return false
		}
		shadow := make([]float64, shape.Size())
		for op := 0; op < 30; op++ {
			if r.Intn(2) == 0 {
				x := []int{r.Intn(shape[0]), r.Intn(shape[1])}
				d := float64(r.Intn(9) - 4)
				a.Update(x, d)
				shadow[shape.Flatten(x)] += d
			} else {
				b := randBox(r, shape)
				got, err := a.Query(b)
				if err != nil || math.Abs(got-naiveRange(shadow, shape, b)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAccessCounterAdvances(t *testing.T) {
	a, _ := New(dims.Shape{8}, []Technique{Raw{}})
	before := a.Accesses
	if _, err := a.Query(dims.NewBox([]int{2}, []int{5})); err != nil {
		t.Fatal(err)
	}
	if a.Accesses-before != 4 {
		t.Errorf("raw query over 4 cells counted %d accesses", a.Accesses-before)
	}
}
