package stats

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortedDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	got := Sorted(xs)
	if !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Errorf("Sorted = %v", got)
	}
	if !reflect.DeepEqual(xs, []float64{3, 1, 2}) {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

// TestQuantileNearestRank locks down the nearest-rank convention
// (index ceil(q*n)-1), in particular at exact bucket boundaries where
// the old int(q*n) rule was off by one (median of 4 items must be the
// 2nd, not the 3rd).
func TestQuantileNearestRank(t *testing.T) {
	four := []float64{10, 20, 30, 40}
	ten := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"median of 4 is the 2nd", four, 0.5, 20},
		{"q25 of 4 is the 1st", four, 0.25, 10},
		{"q75 of 4 is the 3rd", four, 0.75, 30},
		{"q99 of 4 is the 4th", four, 0.99, 40},
		{"tiny q clamps to the 1st", four, 0.0001, 10},
		{"median of 1", []float64{7}, 0.5, 7},
		{"median of 2 is the 1st", []float64{3, 9}, 0.5, 3},
		{"p90 of 10 is the 9th", ten, 0.9, 9},
		{"p50 of 10 is the 5th", ten, 0.5, 5},
		{"p10 of 10 is the 1st", ten, 0.1, 1},
		{"p99 of 10 is the 10th", ten, 0.99, 10},
		{"p30 of 10 is the 3rd", ten, 0.3, 3},
	}
	for _, c := range cases {
		if got := Quantile(c.xs, c.q); got != c.want {
			t.Errorf("%s: Quantile(%v, %v) = %v, want %v", c.name, c.xs, c.q, got, c.want)
		}
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestRollingAvg(t *testing.T) {
	xs := []float64{2, 4, 6, 8, 10}
	got := RollingAvg(xs, 2)
	want := []float64{3, 7, 10}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RollingAvg = %v, want %v", got, want)
	}
	if got := RollingAvg(xs, 1); !reflect.DeepEqual(got, xs) {
		t.Errorf("window 1 = %v", got)
	}
	if got := RollingAvg(nil, 5); got != nil {
		t.Errorf("empty input = %v", got)
	}
}

func TestFreqTracker(t *testing.T) {
	f := NewFreqTracker()
	if f.MostFrequent() != 0 || f.Min() != 0 || f.Max() != 0 || f.N() != 0 {
		t.Error("empty tracker not zeroed")
	}
	for _, v := range []int{2, 1, 2, 5, 2, 1, 0} {
		f.Observe(v)
	}
	if f.Min() != 0 {
		t.Errorf("Min = %d", f.Min())
	}
	if f.Max() != 5 {
		t.Errorf("Max = %d", f.Max())
	}
	if f.MostFrequent() != 2 {
		t.Errorf("MostFrequent = %d", f.MostFrequent())
	}
	if f.Count(1) != 2 {
		t.Errorf("Count(1) = %d", f.Count(1))
	}
	if f.N() != 7 {
		t.Errorf("N = %d", f.N())
	}
	vals, counts := f.Histogram()
	if !reflect.DeepEqual(vals, []int{0, 1, 2, 5}) || !reflect.DeepEqual(counts, []int{1, 2, 3, 1}) {
		t.Errorf("Histogram = %v %v", vals, counts)
	}
}

func TestFreqTrackerTieBreaksLow(t *testing.T) {
	f := NewFreqTracker()
	f.Observe(7)
	f.Observe(3)
	if got := f.MostFrequent(); got != 3 {
		t.Errorf("tie broke to %d, want 3", got)
	}
}

// Property: quantile of any slice lies within [min, max] and Sorted
// output is ascending.
func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(seed int64, qRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(r.Intn(100))
		}
		q := float64(qRaw) / 255
		v := Quantile(xs, q)
		s := Sorted(xs)
		if !sort.Float64sAreSorted(s) {
			return false
		}
		return v >= s[0] && v <= s[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: RollingAvg preserves the overall mean when all groups are
// full (window divides length).
func TestRollingAvgMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		window := r.Intn(5) + 2
		groups := r.Intn(6) + 1
		xs := make([]float64, window*groups)
		for i := range xs {
			xs[i] = float64(r.Intn(50))
		}
		avg := RollingAvg(xs, window)
		if len(avg) != groups {
			return false
		}
		diff := Mean(avg) - Mean(xs)
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
