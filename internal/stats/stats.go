// Package stats provides the small statistical helpers the paper's
// evaluation section needs: sorted per-operation cost curves
// (Figures 12-14), rolling averages over query sequences (Figures
// 10-11), and min/max/most-frequent trackers (Table 4).
package stats

import (
	"math"
	"sort"
)

// Sorted returns a copy of xs in ascending order — the presentation
// used by the paper's per-operation cost figures.
func Sorted(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using the
// nearest-rank rule on a sorted copy: the smallest element whose rank
// r satisfies r >= q*n, i.e. index ceil(q*n)-1. The small epsilon
// keeps exact bucket boundaries (q*n an integer, e.g. the median of 4
// items) from rounding up a rank through floating-point error. This is
// the convention obs.Histogram.Quantile mirrors, so live histogram
// summaries and offline experiment summaries agree. It returns 0 for
// empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := Sorted(xs)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(q*float64(len(s))-1e-9)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// RollingAvg returns the rolling averages of xs over non-overlapping
// groups of the given window size (the paper uses groups of 50 queries
// in Figures 10 and 11). A trailing partial group is averaged over its
// actual length. A window <= 1 returns a copy of xs.
func RollingAvg(xs []float64, window int) []float64 {
	if window <= 1 {
		return append([]float64(nil), xs...)
	}
	var out []float64
	for i := 0; i < len(xs); i += window {
		j := i + window
		if j > len(xs) {
			j = len(xs)
		}
		out = append(out, Mean(xs[i:j]))
	}
	return out
}

// FreqTracker accumulates integer observations and reports the
// minimum, maximum and most frequent value — exactly the three columns
// of the paper's Table 4.
type FreqTracker struct {
	counts map[int]int
	min    int
	max    int
	n      int
}

// NewFreqTracker returns an empty tracker.
func NewFreqTracker() *FreqTracker {
	return &FreqTracker{counts: make(map[int]int)}
}

// Observe records one value.
func (f *FreqTracker) Observe(v int) {
	if f.n == 0 || v < f.min {
		f.min = v
	}
	if f.n == 0 || v > f.max {
		f.max = v
	}
	f.counts[v]++
	f.n++
}

// N returns the number of observations.
func (f *FreqTracker) N() int { return f.n }

// Min returns the minimum observed value (0 if empty).
func (f *FreqTracker) Min() int { return f.min }

// Max returns the maximum observed value (0 if empty).
func (f *FreqTracker) Max() int { return f.max }

// MostFrequent returns the value with the highest count; ties break
// towards the smaller value for determinism. It returns 0 if empty.
func (f *FreqTracker) MostFrequent() int {
	best, bestCount := 0, -1
	for v, c := range f.counts {
		if c > bestCount || (c == bestCount && v < best) {
			best, bestCount = v, c
		}
	}
	if bestCount < 0 {
		return 0
	}
	return best
}

// Count returns how often v was observed.
func (f *FreqTracker) Count(v int) int { return f.counts[v] }

// Histogram returns (value, count) pairs in ascending value order.
func (f *FreqTracker) Histogram() (values []int, counts []int) {
	for v := range f.counts {
		values = append(values, v)
	}
	sort.Ints(values)
	counts = make([]int, len(values))
	for i, v := range values {
		counts[i] = f.counts[v]
	}
	return values, counts
}
