package shard

import (
	"strings"
	"testing"
)

// FuzzShardMapParse drives Parse with arbitrary spec strings: it must
// reject malformed specs with an error (never panic — the spec arrives
// on histproxy's command line and in tests, and a crash there takes
// the whole proxy down before it serves a byte), and every map it does
// accept must satisfy the Map invariants and survive a String/Parse
// round-trip unchanged.
func FuzzShardMapParse(f *testing.F) {
	for _, seed := range []string{
		"a=0-",
		"a=0-99,b=100-",
		"s1=0-9,s2=10-19,s3=20-",
		"localhost:7071=0-999999,localhost:7072=1000000-",
		"",
		"a=0-99",                  // no open-ended hot shard
		"a=0-,b=100-",             // open range not last
		"a=0-99,b=200-",           // gap
		"a=0-99,b=50-",            // overlap
		"a=99-0,b=100-",           // inverted
		"a=-5-99,b=100-",          // negative boundary
		"0-99,b=100-",             // missing addr
		"a=0-99,a=100-",           // duplicate addr
		"a=0-x,b=100-",            // garbage number
		"a==0-99,b=100-",          // double equals
		"a=0--99,b=100-",          // double dash
		",,a=0-,,",                // empty parts
		"a=0-9223372036854775807", // Hi == Open written explicitly
		"p1|r1=0-99,p2|r2=100-",   // replica sets
		"p|r1|r2=0-",              // two replicas
		"p|=0-",                   // empty replica member
		"|p=0-",                   // empty primary member
		"p|p=0-",                  // duplicate member within a set
		"a|b=0-99,b=100-",         // replica duplicated as another primary
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, spec string) {
		m, err := Parse(spec)
		if err != nil {
			return
		}
		shards := m.Shards()
		if len(shards) == 0 {
			t.Fatalf("Parse(%q) accepted an empty map", spec)
		}
		// Accepted maps must hold the invariants New promises.
		seen := make(map[string]bool, len(shards))
		for i, s := range shards {
			for _, addr := range s.Members() {
				if addr == "" {
					t.Fatalf("Parse(%q): shard %d has an empty member addr", spec, i)
				}
				if seen[addr] {
					t.Fatalf("Parse(%q): duplicate addr %q", spec, addr)
				}
				seen[addr] = true
			}
			if s.Range.Hi != Open && s.Range.Hi < s.Range.Lo {
				t.Fatalf("Parse(%q): inverted range %s", spec, s.Range)
			}
			if i > 0 && s.Range.Lo != shards[i-1].Range.Hi+1 {
				t.Fatalf("Parse(%q): gap before shard %d", spec, i)
			}
		}
		if m.Hot().Range.Hi != Open {
			t.Fatalf("Parse(%q): hot shard not open-ended", spec)
		}

		// Format/parse round-trip: String is the canonical spelling and
		// must re-parse to the identical map. Addresses containing the
		// spec's own metacharacters cannot round-trip; Parse accepts
		// them (an addr is opaque up to the last '='), so skip those.
		if anyAddrHasMeta(shards) {
			return
		}
		rendered := m.String()
		m2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() of accepted map does not re-parse: %v\nspec: %q\nrendered: %q", err, spec, rendered)
		}
		if got := m2.String(); got != rendered {
			t.Fatalf("round-trip changed the map:\n  first  %q\n  second %q", rendered, got)
		}
	})
}

// anyAddrHasMeta reports whether an address embeds spec syntax (',',
// '=', the '|' member separator, or whitespace trimmed by Parse) that
// the canonical rendering cannot re-quote.
func anyAddrHasMeta(shards []Shard) bool {
	for _, s := range shards {
		for _, addr := range s.Members() {
			if strings.ContainsAny(addr, ",=|") ||
				strings.TrimSpace(addr) != addr {
				return true
			}
		}
	}
	return false
}
