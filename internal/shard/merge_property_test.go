package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"histcube/internal/agg"
	"histcube/internal/core"
)

// The merge property the proxy's correctness rests on (ISSUE 7,
// Sec. 2.2 invertible operators): for any range query, summing the
// per-shard answers over Route's clamped legs equals the answer a
// single cube holding all the data would give — bit-identically, in
// any arrival order, including empty shards and boundary-straddling
// ranges. Deltas are integers so float addition is exact and the
// equality check can be strict (histlint's nofloateq does not run on
// _test.go files, and approximate comparison would hide real merge
// bugs here).

func newCube(t *testing.T, sizes []int, op agg.Operator) *core.Cube {
	t.Helper()
	ds := make([]core.Dim, len(sizes))
	for i, n := range sizes {
		ds[i] = core.Dim{Name: fmt.Sprintf("d%d", i), Size: n}
	}
	c, err := core.New(core.Config{Dims: ds, Operator: op, BufferOutOfOrder: true})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return c
}

func TestMergeEqualsSingleCubeProperty(t *testing.T) {
	for _, op := range []agg.Operator{agg.Sum, agg.Count} {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			sizes := []int{8, 8}
			const (
				tMax   = 400
				facts  = 600
				trials = 150
			)
			// Four shards with uneven boundaries; the first is left
			// deliberately empty (no facts land in 0-49) to cover the
			// empty-shard case.
			m := mustParse(t, "s0=0-49,s1=50-119,s2=120-299,s3=300-")
			shardCubes := make([]*core.Cube, m.Len())
			for i := range shardCubes {
				shardCubes[i] = newCube(t, sizes, op)
			}
			ref := newCube(t, sizes, op)

			for i := 0; i < facts; i++ {
				ts := int64(50 + rng.Intn(tMax-50)) // skip shard 0's range
				coords := []int{rng.Intn(sizes[0]), rng.Intn(sizes[1])}
				v := float64(rng.Intn(201) - 100)
				s, ok := m.Locate(ts)
				if !ok {
					t.Fatalf("Locate(%d) found no shard", ts)
				}
				idx := -1
				for j, sh := range m.Shards() {
					if sh.Addr == s.Addr {
						idx = j
					}
				}
				if err := shardCubes[idx].Insert(ts, coords, v); err != nil {
					t.Fatalf("shard insert: %v", err)
				}
				if err := ref.Insert(ts, coords, v); err != nil {
					t.Fatalf("ref insert: %v", err)
				}
			}

			for trial := 0; trial < trials; trial++ {
				var tlo, thi int64
				switch trial % 4 {
				case 0: // arbitrary range
					tlo = int64(rng.Intn(tMax))
					thi = tlo + int64(rng.Intn(tMax-int(tlo)))
				case 1: // exactly boundary-straddling: ends near a shard edge
					edges := []int64{49, 50, 119, 120, 299, 300}
					e := edges[rng.Intn(len(edges))]
					tlo = e - int64(rng.Intn(30))
					if tlo < 0 {
						tlo = 0
					}
					thi = e + int64(rng.Intn(30))
				case 2: // whole history
					tlo, thi = 0, tMax
				case 3: // entirely within one shard
					tlo = int64(120 + rng.Intn(100))
					thi = tlo + int64(rng.Intn(int(300-tlo)))
				}
				lo := []int{rng.Intn(sizes[0]), rng.Intn(sizes[1])}
				hi := []int{lo[0] + rng.Intn(sizes[0]-lo[0]), lo[1] + rng.Intn(sizes[1]-lo[1])}

				legs := m.Route(tlo, thi)
				parts := make([]Partial, len(legs))
				for i, leg := range legs {
					v, err := shardCubes[leg.Index].Query(core.Range{
						TimeLo: leg.TimeLo, TimeHi: leg.TimeHi, Lo: lo, Hi: hi,
					})
					if err != nil {
						t.Fatalf("shard %s query: %v", leg.Addr, err)
					}
					parts[i] = Partial{Leg: leg, Value: v}
				}
				// Shuffle arrival order; the merged total must not care.
				rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })

				got := Merge(parts)
				if !got.Complete {
					t.Fatalf("trial %d: all shards answered but merge is not Complete", trial)
				}
				want, err := ref.Query(core.Range{TimeLo: tlo, TimeHi: thi, Lo: lo, Hi: hi})
				if err != nil {
					t.Fatalf("ref query: %v", err)
				}
				if got.Value != want {
					t.Fatalf("trial %d: merge(t=[%d,%d] box=%v..%v) = %v, single cube = %v",
						trial, tlo, thi, lo, hi, got.Value, want)
				}
			}
		})
	}
}

// A failed leg must subtract exactly that leg's contribution and mark
// the answer incomplete — never a wrong total presented as complete.
func TestMergeFailedLegMatchesReferenceHole(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sizes := []int{6, 6}
	m := mustParse(t, "s0=0-99,s1=100-199,s2=200-")
	shardCubes := []*core.Cube{newCube(t, sizes, agg.Sum), newCube(t, sizes, agg.Sum), newCube(t, sizes, agg.Sum)}
	ref := newCube(t, sizes, agg.Sum)
	for i := 0; i < 300; i++ {
		ts := int64(rng.Intn(300))
		coords := []int{rng.Intn(6), rng.Intn(6)}
		v := float64(rng.Intn(41) - 20)
		s, _ := m.Locate(ts)
		for j, sh := range m.Shards() {
			if sh.Addr == s.Addr {
				if err := shardCubes[j].Insert(ts, coords, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := ref.Insert(ts, coords, v); err != nil {
			t.Fatal(err)
		}
	}

	lo, hi := []int{0, 0}, []int{5, 5}
	legs := m.Route(0, 299)
	parts := make([]Partial, len(legs))
	for i, leg := range legs {
		if leg.Addr == "s1" {
			parts[i] = Partial{Leg: leg, Err: fmt.Errorf("injected: shard down")}
			continue
		}
		v, err := shardCubes[leg.Index].Query(core.Range{TimeLo: leg.TimeLo, TimeHi: leg.TimeHi, Lo: lo, Hi: hi})
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = Partial{Leg: leg, Value: v}
	}
	res := Merge(parts)
	if res.Complete {
		t.Fatal("merge with a dead shard claims Complete")
	}
	// The partial value must equal the reference answer with the dead
	// shard's time range carved out.
	left, err := ref.Query(core.Range{TimeLo: 0, TimeHi: 99, Lo: lo, Hi: hi})
	if err != nil {
		t.Fatal(err)
	}
	right, err := ref.Query(core.Range{TimeLo: 200, TimeHi: 299, Lo: lo, Hi: hi})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != left+right {
		t.Fatalf("partial value %v != reference-with-hole %v", res.Value, left+right)
	}
	if FormatMissing(res.Missing) != "s1=100-199" {
		t.Fatalf("Missing = %q", FormatMissing(res.Missing))
	}
	if FormatRanges(res.Covered) != "0-99,200-299" {
		t.Fatalf("Covered = %q", FormatRanges(res.Covered))
	}
}
