package shard

import (
	"errors"
	"strings"
	"testing"
)

func mustParse(t *testing.T, spec string) *Map {
	t.Helper()
	m, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return m
}

func TestParseRoundTrip(t *testing.T) {
	spec := "a:1=0-99,b:2=100-199,c:3=200-"
	m := mustParse(t, spec)
	if got := m.String(); got != spec {
		t.Fatalf("String() = %q, want %q", got, spec)
	}
	if m.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", m.Len())
	}
	if hot := m.Hot(); hot.Addr != "c:3" || hot.Range.Hi != Open {
		t.Fatalf("Hot() = %+v, want open-ended c:3", hot)
	}
}

func TestParseReplicaSets(t *testing.T) {
	spec := "p1|r1=0-99,p2|r2a|r2b=100-"
	m := mustParse(t, spec)
	shards := m.Shards()
	if shards[0].Addr != "p1" || len(shards[0].Replicas) != 1 || shards[0].Replicas[0] != "r1" {
		t.Fatalf("shard 0 = %+v, want primary p1 + replica r1", shards[0])
	}
	if got := shards[1].Members(); len(got) != 3 || got[0] != "p2" || got[1] != "r2a" || got[2] != "r2b" {
		t.Fatalf("shard 1 members = %v", got)
	}
	if got := m.String(); got != spec {
		t.Fatalf("String() = %q, want %q", got, spec)
	}
	// Plain specs stay replica-free.
	if s := mustParse(t, "a=0-").Shards()[0]; len(s.Replicas) != 0 {
		t.Fatalf("plain spec grew replicas: %+v", s)
	}
	// Member addresses share one uniqueness namespace, and every member
	// must be non-empty.
	for _, bad := range []string{"p|p=0-", "p|r=0-99,r=100-", "p|=0-", "|p=0-"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted an invalid replica set", bad)
		}
	}
}

func TestParseAddrWithEquals(t *testing.T) {
	// IPv6-ish or option-laden addresses: split on the LAST '='.
	m := mustParse(t, "host=a=0-9,host=b=10-")
	shards := m.Shards()
	if shards[0].Addr != "host=a" || shards[1].Addr != "host=b" {
		t.Fatalf("addrs = %q, %q", shards[0].Addr, shards[1].Addr)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"", "empty"},
		{"a=0-9", "open-ended"},             // no hot shard
		{"a=0-,b=10-", "only the last"},     // open range not last
		{"a=0-9,b=11-", "contiguous"},       // gap
		{"a=0-9,b=9-", "contiguous"},        // overlap
		{"a=9-0,b=10-", "inverted"},         // hi < lo
		{"a=0-9,a=10-", "twice"},            // duplicate addr
		{"=0-9,b=10-", "addr=lo-hi"},        // empty addr
		{"a=x-9,b=10-", "bad range start"},  // non-numeric
		{"a=0-9,b=10-y", "bad range end"},   // non-numeric hi
		{"a=-5-9,b=10-", "bad range start"}, // negative lo
		{"a", "addr=lo-hi"},                 // no '='
		{"a=09", "lo-hi"},                   // no dash
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q, got nil", tc.spec, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q): error %q does not contain %q", tc.spec, err, tc.want)
		}
	}
}

func TestLocate(t *testing.T) {
	m := mustParse(t, "a=10-99,b=100-199,c=200-")
	cases := []struct {
		t    int64
		addr string
		ok   bool
	}{
		{9, "", false}, // before the map
		{10, "a", true},
		{99, "a", true},
		{100, "b", true},
		{199, "b", true},
		{200, "c", true},
		{1 << 40, "c", true}, // hot shard is open-ended
	}
	for _, tc := range cases {
		s, ok := m.Locate(tc.t)
		if ok != tc.ok || (ok && s.Addr != tc.addr) {
			t.Errorf("Locate(%d) = (%q, %v), want (%q, %v)", tc.t, s.Addr, ok, tc.addr, tc.ok)
		}
	}
}

func TestRoute(t *testing.T) {
	m := mustParse(t, "a=0-99,b=100-199,c=200-")

	// Straddles all three shards; clamped at both ends.
	legs := m.Route(50, 250)
	if len(legs) != 3 {
		t.Fatalf("Route(50,250) = %d legs, want 3", len(legs))
	}
	want := []Leg{
		{Index: 0, Addr: "a", TimeLo: 50, TimeHi: 99},
		{Index: 1, Addr: "b", TimeLo: 100, TimeHi: 199},
		{Index: 2, Addr: "c", TimeLo: 200, TimeHi: 250},
	}
	for i, l := range legs {
		if l != want[i] {
			t.Errorf("leg %d = %+v, want %+v", i, l, want[i])
		}
	}

	// Entirely inside one shard.
	legs = m.Route(120, 150)
	if len(legs) != 1 || legs[0].Addr != "b" || legs[0].TimeLo != 120 || legs[0].TimeHi != 150 {
		t.Fatalf("Route(120,150) = %+v", legs)
	}

	// Inverted and before-the-map ranges route nowhere.
	if legs := m.Route(150, 120); legs != nil {
		t.Fatalf("Route(150,120) = %+v, want nil", legs)
	}
	m2 := mustParse(t, "a=100-199,b=200-")
	if legs := m2.Route(0, 99); legs != nil {
		t.Fatalf("Route before map = %+v, want nil", legs)
	}
	// Partially before the map clamps to the first shard.
	legs = m2.Route(0, 150)
	if len(legs) != 1 || legs[0].TimeLo != 100 || legs[0].TimeHi != 150 {
		t.Fatalf("Route(0,150) = %+v", legs)
	}
}

func TestMergeComplete(t *testing.T) {
	legs := mustParse(t, "a=0-99,b=100-199,c=200-").Route(0, 300)
	parts := []Partial{
		{Leg: legs[2], Value: 3},
		{Leg: legs[0], Value: 1},
		{Leg: legs[1], Value: 2},
	}
	res := Merge(parts)
	if !res.Complete || res.Value != 6 || res.Legs != 3 {
		t.Fatalf("Merge = %+v, want complete value 6 over 3 legs", res)
	}
	// Contiguous leg ranges coalesce into one covered interval.
	if len(res.Covered) != 1 || res.Covered[0] != (Range{Lo: 0, Hi: 300}) {
		t.Fatalf("Covered = %v, want [0-300]", res.Covered)
	}
	if len(res.Missing) != 0 {
		t.Fatalf("Missing = %v, want none", res.Missing)
	}
}

func TestMergePartial(t *testing.T) {
	legs := mustParse(t, "a=0-99,b=100-199,c=200-").Route(0, 300)
	parts := []Partial{
		{Leg: legs[0], Value: 1},
		{Leg: legs[1], Err: errors.New("shard down")},
		{Leg: legs[2], Value: 3},
	}
	res := Merge(parts)
	if res.Complete {
		t.Fatal("Merge with a failed leg reported Complete")
	}
	if res.Value != 4 {
		t.Fatalf("Value = %v, want 4 (surviving legs only)", res.Value)
	}
	if got := FormatRanges(res.Covered); got != "0-99,200-300" {
		t.Fatalf("Covered = %q, want two disjoint ranges around the hole", got)
	}
	if got := FormatMissing(res.Missing); got != "b=100-199" {
		t.Fatalf("Missing = %q", got)
	}
}

func TestMergeOrderInvariant(t *testing.T) {
	legs := mustParse(t, "a=0-9,b=10-19,c=20-29,d=30-").Route(0, 40)
	// Values chosen so naive float summation is order-sensitive.
	vals := []float64{1e16, 1, -1e16, 2}
	perm := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}}
	var first float64
	for i, p := range perm {
		parts := make([]Partial, 0, len(p))
		for _, j := range p {
			parts = append(parts, Partial{Leg: legs[j], Value: vals[j]})
		}
		res := Merge(parts)
		if i == 0 {
			first = res.Value
			continue
		}
		if res.Value != first {
			t.Fatalf("permutation %v: value %v != %v — merge is arrival-order dependent", p, res.Value, first)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	res := Merge(nil)
	if !res.Complete || res.Value != 0 || res.Legs != 0 {
		t.Fatalf("Merge(nil) = %+v, want complete zero", res)
	}
	if FormatRanges(res.Covered) != "none" || FormatMissing(res.Missing) != "none" {
		t.Fatalf("empty formats = %q / %q, want none/none", FormatRanges(res.Covered), FormatMissing(res.Missing))
	}
}

func TestMergeCoverageFraction(t *testing.T) {
	legs := mustParse(t, "a=0-99,b=100-199,c=200-").Route(0, 399)
	full := Merge([]Partial{{Leg: legs[0], Value: 1}, {Leg: legs[1], Value: 2}, {Leg: legs[2], Value: 3}})
	if got := full.Coverage(); got != 1 {
		t.Fatalf("complete coverage = %v, want 1", got)
	}
	// One failed leg of 100 timestamps out of 400 requested: 75%.
	part := Merge([]Partial{
		{Leg: legs[0], Value: 1},
		{Leg: legs[1], Err: errors.New("down")},
		{Leg: legs[2], Value: 3},
	})
	if got := part.Coverage(); got != 0.75 {
		t.Fatalf("partial coverage = %v, want 0.75", got)
	}
	if Merge(nil).Coverage() != 1 {
		t.Fatal("empty merge must report full coverage")
	}
}

func TestRangeString(t *testing.T) {
	if got := (Range{Lo: 5, Hi: Open}).String(); got != "5-" {
		t.Fatalf("open range = %q", got)
	}
	if got := (Range{Lo: 5, Hi: 9}).String(); got != "5-9" {
		t.Fatalf("closed range = %q", got)
	}
}
