// Package shard implements time-range sharding for histcube: an
// immutable shard map keyed by contiguous transaction-time ranges,
// query route computation, and partial-aggregate merging for the
// scatter-gather proxy (cmd/histproxy).
//
// The partitioning leans on the paper's core reduction (Sec. 2.2): any
// d-dimensional range query decomposes into two (d-1)-dimensional
// instance queries against cumulative slices, and the supported
// operators (SUM, COUNT — AVG is maintained as the pair) are
// invertible. Because the transaction-time dimension is answered by
// prefix differences, a time-range partition splits any query into
// independent per-shard sub-queries whose results merge by simple
// addition — no coordination, no re-aggregation state. Historic shards
// converge to the read-only PS regime (the EXPLAIN convergence the
// server already proves) while the single open-ended hot shard absorbs
// appends.
//
// A Map is a sorted list of disjoint, contiguous inclusive time ranges
// [Lo, Hi], exactly the last of which is open-ended (Hi ==
// math.MaxInt64): the hot shard. Locate routes a mutation by its
// timestamp; Route clamps a query's time range into one Leg per
// overlapped shard. Merge folds the per-shard answers back together in
// deterministic map order, so the merged total is bit-identical across
// response arrival orders, and reports exactly which time ranges a
// degraded answer still covers when a shard failed.
package shard

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Open is the Hi value of the open-ended hot range.
const Open = math.MaxInt64

// Range is an inclusive transaction-time interval [Lo, Hi]; Hi == Open
// marks the hot shard's open-ended range.
type Range struct {
	Lo, Hi int64
}

// Contains reports whether t falls inside the range.
func (r Range) Contains(t int64) bool { return t >= r.Lo && t <= r.Hi }

// String renders the range in the shard-spec syntax: "lo-hi", or
// "lo-" for the open-ended range.
func (r Range) String() string {
	if r.Hi == Open {
		return fmt.Sprintf("%d-", r.Lo)
	}
	return fmt.Sprintf("%d-%d", r.Lo, r.Hi)
}

// Shard is one replica set owning a time range: the primary at Addr
// (which takes the writes) plus zero or more replicas kept in sync by
// WAL shipping. Reads may go to any member — replicas replay the
// primary's totally ordered op stream, so every member answers
// bit-identically — and on primary failure the proxy promotes the
// most-caught-up replica.
type Shard struct {
	Addr     string   // primary (initial write target)
	Replicas []string // follower addresses, may be empty
	Range    Range
}

// Members returns every address in the replica set, primary first.
func (s Shard) Members() []string {
	return append([]string{s.Addr}, s.Replicas...)
}

// Map is an immutable, ordered shard map. Construct with New or Parse;
// the zero value is empty and routes nothing.
type Map struct {
	shards []Shard
}

// Parse builds a Map from a spec string:
//
//	addr=lo-hi,addr=lo-hi,...,addr=lo-
//
// Each addr may be a '|'-separated replica set, primary first:
//
//	primary|replica1|replica2=lo-hi
//
// Ranges are inclusive, must ascend contiguously (each Lo is the
// previous Hi + 1) and exactly the last must be open-ended ("lo-"): the
// hot shard taking appends. Boundaries must be non-negative — the
// spec's "-" separator doubles as the range dash.
func Parse(spec string) (*Map, error) {
	parts := strings.Split(spec, ",")
	shards := make([]Shard, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.LastIndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("shard %q: want addr=lo-hi", part)
		}
		addr, rng := part[:eq], part[eq+1:]
		loStr, hiStr, ok := strings.Cut(rng, "-")
		if !ok {
			return nil, fmt.Errorf("shard %q: range %q wants lo-hi or lo- (open)", part, rng)
		}
		lo, err := strconv.ParseInt(loStr, 10, 64)
		if err != nil || lo < 0 {
			return nil, fmt.Errorf("shard %q: bad range start %q (non-negative integer required)", part, loStr)
		}
		hi := int64(Open)
		if hiStr != "" {
			hi, err = strconv.ParseInt(hiStr, 10, 64)
			if err != nil || hi < 0 {
				return nil, fmt.Errorf("shard %q: bad range end %q (non-negative integer or empty for open)", part, hiStr)
			}
		}
		members := strings.Split(addr, "|")
		var reps []string
		if len(members) > 1 {
			reps = members[1:]
		}
		shards = append(shards, Shard{Addr: members[0], Replicas: reps, Range: Range{Lo: lo, Hi: hi}})
	}
	return New(shards)
}

// New validates and freezes a shard list into a Map. The ranges must
// be sorted ascending, contiguous (no gaps, no overlaps), with exactly
// the last range open-ended; member addresses (primaries and replicas
// alike) must be unique and non-empty.
func New(shards []Shard) (*Map, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard map is empty")
	}
	seen := make(map[string]bool, len(shards))
	for i, s := range shards {
		for _, addr := range s.Members() {
			if addr == "" {
				return nil, fmt.Errorf("shard %d has an empty member address", i)
			}
			if seen[addr] {
				return nil, fmt.Errorf("shard address %q appears twice", addr)
			}
			seen[addr] = true
		}
		if s.Range.Hi != Open && s.Range.Hi < s.Range.Lo {
			return nil, fmt.Errorf("shard %s: range %s is inverted", s.Addr, s.Range)
		}
		if i > 0 {
			prev := shards[i-1].Range
			if prev.Hi == Open {
				return nil, fmt.Errorf("shard %s: only the last range may be open-ended", shards[i-1].Addr)
			}
			if s.Range.Lo != prev.Hi+1 {
				return nil, fmt.Errorf("shard %s: range %s does not continue %s (want lo=%d — the map must be contiguous)",
					s.Addr, s.Range, prev, prev.Hi+1)
			}
		}
	}
	if last := shards[len(shards)-1].Range; last.Hi != Open {
		return nil, fmt.Errorf("last shard %s: range %s must be open-ended (lo-) — the hot shard absorbs all future appends",
			shards[len(shards)-1].Addr, last)
	}
	return &Map{shards: append([]Shard(nil), shards...)}, nil
}

// Shards returns the ordered shard list (a copy).
func (m *Map) Shards() []Shard {
	return append([]Shard(nil), m.shards...)
}

// Len returns the number of shards.
func (m *Map) Len() int { return len(m.shards) }

// Hot returns the open-ended append shard (the last one).
func (m *Map) Hot() Shard { return m.shards[len(m.shards)-1] }

// String renders the map in the Parse spec syntax.
func (m *Map) String() string {
	parts := make([]string, len(m.shards))
	for i, s := range m.shards {
		parts[i] = strings.Join(s.Members(), "|") + "=" + s.Range.String()
	}
	return strings.Join(parts, ",")
}

// Locate returns the shard owning timestamp t — the mutation route.
// ok is false when t precedes the first shard's range.
func (m *Map) Locate(t int64) (Shard, bool) {
	i := sort.Search(len(m.shards), func(i int) bool { return m.shards[i].Range.Hi >= t })
	if i == len(m.shards) || t < m.shards[i].Range.Lo {
		return Shard{}, false
	}
	return m.shards[i], true
}

// Leg is one shard's share of a scattered query: the shard plus the
// query's time range clamped to the shard's.
type Leg struct {
	Index          int // position in the map; Merge sums in this order
	Addr           string
	TimeLo, TimeHi int64
}

// Range returns the leg's clamped time range.
func (l Leg) Range() Range { return Range{Lo: l.TimeLo, Hi: l.TimeHi} }

// Route computes the scatter legs for a query over [tlo, thi]: one leg
// per overlapped shard with the time range clamped to the overlap, in
// map order. An empty result means no shard holds any of the range
// (the query precedes the map, or tlo > thi) — the correct answer is
// the operator's zero.
func (m *Map) Route(tlo, thi int64) []Leg {
	if tlo > thi {
		return nil
	}
	var legs []Leg
	for i, s := range m.shards {
		if s.Range.Hi < tlo || s.Range.Lo > thi {
			continue
		}
		legs = append(legs, Leg{
			Index:  i,
			Addr:   s.Addr,
			TimeLo: maxInt64(tlo, s.Range.Lo),
			TimeHi: minInt64(thi, s.Range.Hi),
		})
	}
	return legs
}

// Partial is one shard's answer (or failure) for its leg.
type Partial struct {
	Leg   Leg
	Value float64
	Err   error
}

// Result is a merged scatter-gather answer. When Complete, Value is
// the full answer and bit-identical to what a single cube holding all
// the data would return (Merge sums in map order regardless of
// response arrival order, and SUM/COUNT partials merge by exact
// addition of the same per-shard sums). When not Complete, Value
// covers only the Covered time ranges and Missing names the failed
// legs — a degraded PARTIAL answer, never a wrong total presented as
// complete.
type Result struct {
	Value    float64
	Complete bool
	Legs     int
	Covered  []Range // coalesced time ranges the answer covers
	Missing  []Leg   // failed legs, in map order

	// CoveredSpan/TotalSpan measure the answered and requested time
	// spans (in timestamps, as float64 so an open-ended hot-range leg
	// cannot overflow the sum). Coverage() derives the fraction.
	CoveredSpan float64
	TotalSpan   float64
}

// Coverage returns the fraction of the requested time span the merged
// value covers: 1 for a complete answer (including the zero-leg case —
// an empty route covers all of nothing), less when legs failed.
// Dashboards alert on this; the wire protocol carries it on PARTIAL
// replies as coverage=<frac>.
func (r Result) Coverage() float64 {
	if r.TotalSpan <= 0 {
		return 1
	}
	return r.CoveredSpan / r.TotalSpan
}

// Merge folds per-shard partials into one Result. The invertible-
// operator property (Sec. 2.2) makes this a plain sum: each shard
// already answered its clamped sub-range, and SUM/COUNT partials
// combine by addition. Partials are summed in Leg.Index order, so the
// result does not depend on the order responses arrived in.
func Merge(parts []Partial) Result {
	ordered := append([]Partial(nil), parts...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Leg.Index < ordered[j].Leg.Index })
	res := Result{Complete: true, Legs: len(ordered)}
	for _, p := range ordered {
		span := float64(p.Leg.TimeHi-p.Leg.TimeLo) + 1
		res.TotalSpan += span
		if p.Err != nil {
			res.Complete = false
			res.Missing = append(res.Missing, p.Leg)
			continue
		}
		res.Value += p.Value
		res.CoveredSpan += span
		res.Covered = appendCoalesced(res.Covered, p.Leg.Range())
	}
	return res
}

// appendCoalesced appends r to sorted ranges, merging it into the last
// one when adjacent or overlapping (legs arrive in map order, so
// contiguous shard ranges coalesce into one covered interval).
func appendCoalesced(ranges []Range, r Range) []Range {
	if n := len(ranges); n > 0 {
		last := &ranges[n-1]
		if last.Hi != Open && r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			return ranges
		}
	}
	return append(ranges, r)
}

// FormatRanges renders ranges for the wire ("none" when empty), e.g.
// "0-9,20-29".
func FormatRanges(ranges []Range) string {
	if len(ranges) == 0 {
		return "none"
	}
	parts := make([]string, len(ranges))
	for i, r := range ranges {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// FormatMissing renders failed legs for the wire as addr=lo-hi pairs
// ("none" when empty).
func FormatMissing(legs []Leg) string {
	if len(legs) == 0 {
		return "none"
	}
	parts := make([]string, len(legs))
	for i, l := range legs {
		parts[i] = l.Addr + "=" + l.Range().String()
	}
	return strings.Join(parts, ",")
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
