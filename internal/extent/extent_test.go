package extent

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"histcube/internal/dims"
	"histcube/internal/framework"
	"histcube/internal/molap"
)

const coordDomain = 8

func newTracker(t testing.TB, withEndpoint bool) *Tracker {
	t.Helper()
	cfg := Config{
		Fresh: func() framework.Cloneable { return framework.NewBTreeStructure() },
	}
	if withEndpoint {
		cfg.FreshEndpoint = func() framework.Cloneable {
			a, err := molap.New(dims.Shape{64, coordDomain}, []molap.Technique{molap.Raw{}, molap.Raw{}})
			if err != nil {
				t.Fatal(err)
			}
			return framework.NewArrayStructure(a)
		}
		// Clamp into the endpoint structure's start domain; monotone,
		// and all actual starts land strictly inside.
		cfg.StartToCoord = func(s int64) int {
			if s < 0 {
				return 0
			}
			if s > 63 {
				return 63
			}
			return int(s)
		}
	}
	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

type naiveIntervals []Interval

func (n naiveIntervals) intersect(lo, hi int64, b dims.Box) float64 {
	total := 0.0
	for _, iv := range n {
		if iv.Start <= hi && iv.End >= lo && b.Contains(iv.Coords) {
			total += iv.Value
		}
	}
	return total
}

func (n naiveIntervals) contained(lo, hi int64, b dims.Box) float64 {
	total := 0.0
	for _, iv := range n {
		if iv.Start >= lo && iv.End <= hi && b.Contains(iv.Coords) {
			total += iv.Value
		}
	}
	return total
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewTracker(Config{}); err == nil {
		t.Error("NewTracker without Fresh succeeded")
	}
	_, err := NewTracker(Config{
		Fresh:         func() framework.Cloneable { return framework.NewBTreeStructure() },
		FreshEndpoint: func() framework.Cloneable { return framework.NewBTreeStructure() },
	})
	if err == nil {
		t.Error("FreshEndpoint without StartToCoord succeeded")
	}
}

func TestAddValidation(t *testing.T) {
	tr := newTracker(t, false)
	if err := tr.Add(Interval{Start: 5, End: 3, Coords: []int{0}, Value: 1}); err == nil {
		t.Error("inverted interval accepted")
	}
	if err := tr.Add(Interval{Start: 10, End: 12, Coords: []int{0}, Value: 1}); err != nil {
		t.Fatal(err)
	}
	err := tr.Add(Interval{Start: 9, End: 12, Coords: []int{0}, Value: 1})
	if !errors.Is(err, ErrNotAppendOnly) {
		t.Errorf("backwards start error = %v", err)
	}
}

func TestPaperCountExample(t *testing.T) {
	// COUNT of objects whose time interval intersects a query
	// interval, per the Section 2.4 identity b(up)+c(up)-b(low).
	tr := newTracker(t, false)
	ivs := naiveIntervals{
		{Start: 1, End: 4, Coords: []int{2}, Value: 1},
		{Start: 2, End: 2, Coords: []int{3}, Value: 1},
		{Start: 3, End: 9, Coords: []int{2}, Value: 1},
		{Start: 5, End: 6, Coords: []int{7}, Value: 1},
	}
	for _, iv := range ivs {
		if err := tr.Add(iv); err != nil {
			t.Fatal(err)
		}
	}
	box := dims.NewBox([]int{0}, []int{9})
	for _, q := range [][2]int64{{1, 1}, {2, 4}, {5, 8}, {0, 20}, {10, 20}, {7, 7}} {
		got, err := tr.IntersectQuery(q[0], q[1], box)
		if err != nil {
			t.Fatal(err)
		}
		if want := ivs.intersect(q[0], q[1], box); got != want {
			t.Fatalf("intersect [%d,%d] = %v, want %v", q[0], q[1], got, want)
		}
	}
	// Stab queries.
	for at := int64(0); at <= 10; at++ {
		got, err := tr.StabQuery(at, box)
		if err != nil {
			t.Fatal(err)
		}
		if want := ivs.intersect(at, at, box); got != want {
			t.Fatalf("stab %d = %v, want %v", at, got, want)
		}
	}
}

func TestPendingAndLen(t *testing.T) {
	tr := newTracker(t, false)
	if err := tr.Add(Interval{Start: 1, End: 100, Coords: []int{0}, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(Interval{Start: 2, End: 3, Coords: []int{0}, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.Pending() != 2 {
		t.Fatalf("Len=%d Pending=%d", tr.Len(), tr.Pending())
	}
	if err := tr.Flush(50); err != nil {
		t.Fatal(err)
	}
	if tr.Pending() != 1 {
		t.Fatalf("Pending after flush = %d", tr.Pending())
	}
}

func TestContainedQueryRequiresEndpointFamily(t *testing.T) {
	tr := newTracker(t, false)
	_, err := tr.ContainedQuery(0, 10, dims.NewBox([]int{0}, []int{5}))
	if !errors.Is(err, ErrNoEndpointFamily) {
		t.Errorf("err = %v", err)
	}
}

func TestContainedQuery(t *testing.T) {
	tr := newTracker(t, true)
	ivs := naiveIntervals{
		{Start: 1, End: 4, Coords: []int{2}, Value: 1},
		{Start: 2, End: 10, Coords: []int{3}, Value: 1},
		{Start: 3, End: 3, Coords: []int{2}, Value: 1},
		{Start: 5, End: 7, Coords: []int{7}, Value: 1},
		{Start: 6, End: 6, Coords: []int{1}, Value: 1},
	}
	for _, iv := range ivs {
		if err := tr.Add(iv); err != nil {
			t.Fatal(err)
		}
	}
	box := dims.NewBox([]int{0}, []int{7})
	for _, q := range [][2]int64{{0, 20}, {1, 4}, {2, 7}, {3, 5}, {5, 7}, {8, 9}} {
		got, err := tr.ContainedQuery(q[0], q[1], box)
		if err != nil {
			t.Fatal(err)
		}
		if want := ivs.contained(q[0], q[1], box); got != want {
			t.Fatalf("contained [%d,%d] = %v, want %v", q[0], q[1], got, want)
		}
	}
}

// Property: intersect and contained queries match the naive scan for
// random interval streams with SUM measures, including coordinate
// boxes that exclude some objects.
func TestShadowProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := newTracker(t, true)
		var ivs naiveIntervals
		// Generate intervals sorted by start within [0, 50].
		starts := make([]int, 25)
		for i := range starts {
			starts[i] = r.Intn(50)
		}
		sort.Ints(starts)
		for _, s := range starts {
			iv := Interval{
				Start:  int64(s),
				End:    int64(s + r.Intn(12)),
				Coords: []int{r.Intn(coordDomain)},
				Value:  float64(r.Intn(5) + 1),
			}
			if err := tr.Add(iv); err != nil {
				return false
			}
			ivs = append(ivs, iv)
		}
		for q := 0; q < 40; q++ {
			lo := int64(r.Intn(60))
			hi := lo + int64(r.Intn(20))
			cl := r.Intn(coordDomain)
			ch := cl + r.Intn(coordDomain-cl)
			box := dims.NewBox([]int{cl}, []int{ch})
			gi, err := tr.IntersectQuery(lo, hi, box)
			if err != nil || gi != ivs.intersect(lo, hi, box) {
				return false
			}
			gc, err := tr.ContainedQuery(lo, hi, box)
			if err != nil || gc != ivs.contained(lo, hi, box) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
