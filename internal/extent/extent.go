// Package extent handles objects with an extent in the TT-dimension
// (Section 2.4 of the paper): each object carries a closed time
// interval [Start, End] plus (d-1)-dimensional point coordinates and a
// measure. Following the reduction the paper adapts from Zhang et
// al., two instance families are maintained per occurring time t:
//
//	C(t) — objects whose interval contains t (alive at t)
//	B(t) — objects whose interval ended strictly before t
//
// and the aggregate over objects whose interval intersects a query
// interval [lo, up] is b(up) + c(up) - b(lo): three (d-1)-dimensional
// queries instead of two, and roughly doubled storage and update cost,
// exactly as the paper analyses.
//
// With integer times, "ends strictly before t" means End <= t-1, so
// the end of interval [s, e] fires events at time e+1: a deletion from
// C and an insertion into B. Events are processed in time order by a
// pending-event queue, which is what makes both C and B append-only
// data sets the framework can manage.
//
// Containment queries ("interval contained in [lo, up]") constrain
// Start and End jointly, which the C/B pair cannot separate; the
// Tracker therefore also maintains an endpoint-indexed family E whose
// instances store points (Start, coords) keyed by the End event time,
// so contained(lo, up) is one prefix-time query at up with a Start
// range of [lo, up].
package extent

import (
	"container/heap"
	"errors"
	"fmt"

	"histcube/internal/dims"
	"histcube/internal/framework"
)

// Interval is one object with extent in the TT-dimension.
type Interval struct {
	// Start and End delimit the closed validity interval; Start <= End.
	Start, End int64
	// Coords locate the object in the d-1 non-time dimensions.
	Coords []int
	// Value is the object's measure (1 for COUNT semantics).
	Value float64
}

// ErrNotAppendOnly reports an interval starting before an already
// processed event time.
var ErrNotAppendOnly = errors.New("extent: interval starts before an already processed time")

type endEvent struct {
	at    int64 // End + 1
	start int64
	x     []int
	value float64
}

type endQueue []endEvent

func (q endQueue) Len() int           { return len(q) }
func (q endQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q endQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *endQueue) Push(x any)        { *q = append(*q, x.(endEvent)) }
func (q *endQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Config configures a Tracker.
type Config struct {
	// Fresh creates an empty (d-1)-dimensional structure for the C and
	// B families (required).
	Fresh func() framework.Cloneable
	// FreshEndpoint creates an empty d-dimensional structure whose
	// first dimension is the Start coordinate, for the containment
	// family E. Nil disables ContainedQuery.
	FreshEndpoint func() framework.Cloneable
	// StartToCoord maps a Start time onto the first coordinate of the
	// endpoint structure; required with FreshEndpoint. Identity
	// truncation is typical when starts are small and dense.
	StartToCoord func(int64) int
}

// Tracker maintains the C, B (and optionally E) instance families over
// interval objects arriving in Start order.
type Tracker struct {
	c, b, e      *framework.AppendOnly
	startToCoord func(int64) int
	pending      endQueue
	processed    int64
	count        int
}

// NewTracker returns a Tracker for the configuration.
func NewTracker(cfg Config) (*Tracker, error) {
	if cfg.Fresh == nil {
		return nil, fmt.Errorf("extent: Config.Fresh is required")
	}
	c, err := framework.New(framework.Config{Source: framework.NewCloneSource(cfg.Fresh)})
	if err != nil {
		return nil, err
	}
	b, err := framework.New(framework.Config{Source: framework.NewCloneSource(cfg.Fresh)})
	if err != nil {
		return nil, err
	}
	t := &Tracker{c: c, b: b, processed: int64(-1) << 62}
	if cfg.FreshEndpoint != nil {
		if cfg.StartToCoord == nil {
			return nil, fmt.Errorf("extent: StartToCoord is required with FreshEndpoint")
		}
		e, err := framework.New(framework.Config{Source: framework.NewCloneSource(cfg.FreshEndpoint)})
		if err != nil {
			return nil, err
		}
		t.e = e
		t.startToCoord = cfg.StartToCoord
	}
	return t, nil
}

// Add registers an interval object. Objects must arrive in
// non-decreasing Start order relative to all previously processed
// event times.
func (t *Tracker) Add(iv Interval) error {
	if iv.Start > iv.End {
		return fmt.Errorf("extent: inverted interval [%d, %d]", iv.Start, iv.End)
	}
	if iv.Start < t.processed {
		return fmt.Errorf("%w: start %d, processed through %d", ErrNotAppendOnly, iv.Start, t.processed)
	}
	if err := t.Flush(iv.Start); err != nil {
		return err
	}
	if err := t.c.Update(iv.Start, iv.Coords, iv.Value); err != nil {
		return err
	}
	heap.Push(&t.pending, endEvent{
		at:    iv.End + 1,
		start: iv.Start,
		x:     append([]int(nil), iv.Coords...),
		value: iv.Value,
	})
	t.processed = iv.Start
	t.count++
	return nil
}

// Flush applies all pending end events with time <= upTo, advancing
// the processed watermark to at least upTo. Later Adds must not start
// before the watermark.
func (t *Tracker) Flush(upTo int64) error {
	for len(t.pending) > 0 && t.pending[0].at <= upTo {
		ev := heap.Pop(&t.pending).(endEvent)
		if err := t.c.Update(ev.at, ev.x, -ev.value); err != nil {
			return err
		}
		if err := t.b.Update(ev.at, ev.x, ev.value); err != nil {
			return err
		}
		if t.e != nil {
			ex := make([]int, 0, len(ev.x)+1)
			ex = append(ex, t.startToCoord(ev.start))
			ex = append(ex, ev.x...)
			if err := t.e.Update(ev.at, ex, ev.value); err != nil {
				return err
			}
		}
		t.processed = ev.at
	}
	if upTo > t.processed {
		t.processed = upTo
	}
	return nil
}

// Len returns the number of objects added.
func (t *Tracker) Len() int { return t.count }

// Pending returns the number of unexpired end events.
func (t *Tracker) Pending() int { return len(t.pending) }

// IntersectQuery aggregates over objects whose interval intersects
// [tLo, tHi] and whose coordinates lie in the box:
// b(tHi) + c(tHi) - b(tLo), the paper's three (d-1)-dimensional
// queries. All end events up to tHi are flushed first, so subsequent
// Adds must start at or after tHi.
func (t *Tracker) IntersectQuery(tLo, tHi int64, b dims.Box) (float64, error) {
	if tLo > tHi {
		return 0, fmt.Errorf("extent: inverted time range [%d, %d]", tLo, tHi)
	}
	if err := t.Flush(tHi); err != nil {
		return 0, err
	}
	bUp, err := t.b.PrefixQuery(tHi, b)
	if err != nil {
		return 0, err
	}
	cUp, err := t.c.PrefixQuery(tHi, b)
	if err != nil {
		return 0, err
	}
	bLo, err := t.b.PrefixQuery(tLo, b)
	if err != nil {
		return 0, err
	}
	return bUp + cUp - bLo, nil
}

// StabQuery aggregates over objects alive at the time instant (their
// interval contains it) with coordinates in the box: c(at).
func (t *Tracker) StabQuery(at int64, b dims.Box) (float64, error) {
	return t.IntersectQuery(at, at, b)
}

// ErrNoEndpointFamily reports a ContainedQuery on a Tracker built
// without FreshEndpoint.
var ErrNoEndpointFamily = errors.New("extent: containment queries need the endpoint family; configure FreshEndpoint")

// ContainedQuery aggregates over objects whose interval is fully
// contained in [tLo, tHi] (tLo <= Start, End <= tHi) with coordinates
// in the box: one prefix-time query on the endpoint family E at tHi+1
// (End <= tHi) with the Start coordinate restricted to [tLo, tHi].
// End events up to tHi+1 are flushed first.
func (t *Tracker) ContainedQuery(tLo, tHi int64, b dims.Box) (float64, error) {
	if t.e == nil {
		return 0, ErrNoEndpointFamily
	}
	if tLo > tHi {
		return 0, fmt.Errorf("extent: inverted time range [%d, %d]", tLo, tHi)
	}
	if err := t.Flush(tHi + 1); err != nil {
		return 0, err
	}
	lo := make([]int, 0, len(b.Lo)+1)
	hi := make([]int, 0, len(b.Hi)+1)
	lo = append(lo, t.startToCoord(tLo))
	hi = append(hi, t.startToCoord(tHi))
	lo = append(lo, b.Lo...)
	hi = append(hi, b.Hi...)
	return t.e.PrefixQuery(tHi+1, dims.Box{Lo: lo, Hi: hi})
}
