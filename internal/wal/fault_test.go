// Fault-injection tests for the WAL: they live in an external test
// package so they exercise the log exactly as histserve does, through
// the exported surface (Options.WrapSegment + the fault injector).
package wal_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"histcube/internal/agg"
	"histcube/internal/core"
	"histcube/internal/fault"
	"histcube/internal/obs"
	"histcube/internal/retry"
	"histcube/internal/wal"
)

func newCube(t *testing.T) func() (*core.Cube, error) {
	t.Helper()
	return func() (*core.Cube, error) {
		return core.New(core.Config{
			Dims:             []core.Dim{{Name: "x", Size: 8}, {Name: "y", Size: 4}},
			Operator:         agg.Sum,
			BufferOutOfOrder: true,
		})
	}
}

// quietPolicy retries without wall-clock sleeps.
func quietPolicy() retry.Policy {
	p := retry.Default()
	p.Sleep = func(time.Duration) {}
	return p
}

func faultOptions(inj *fault.Injector, opts wal.Options) wal.Options {
	opts.Retry = quietPolicy()
	opts.WrapSegment = func(f wal.SegmentFile) wal.SegmentFile {
		return inj.WrapFile("wal", f)
	}
	return opts
}

func testOp(i int) core.Op {
	return core.Op{Kind: core.OpInsert, Time: int64(i + 1), Coords: []int{i % 8, i % 4}, Value: 1}
}

func TestAppendRetriesTransientWriteError(t *testing.T) {
	dir := t.TempDir()
	inj := fault.MustParse("wal.write:err@2", 1)
	_, l, _, err := wal.Recover(dir, faultOptions(inj, wal.Options{Sync: wal.SyncNever}), newCube(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(testOp(i)); err != nil {
			t.Fatalf("append %d should survive one transient write error: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if inj.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", inj.Injected())
	}

	_, l2, res, err := wal.Recover(dir, wal.Options{}, newCube(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if res.Replayed != 3 || res.TornTail {
		t.Fatalf("recovery = %+v, want 3 replayed and no torn tail", res)
	}
}

func TestAppendRollsBackTornWrite(t *testing.T) {
	dir := t.TempDir()
	// Op 2's write is torn: half the frame lands, then an error. The
	// retry must truncate the partial frame before writing again, or
	// the segment ends up with a duplicated half-record.
	inj := fault.MustParse("wal.write:short@2", 1)
	_, l, _, err := wal.Recover(dir, faultOptions(inj, wal.Options{Sync: wal.SyncNever}), newCube(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(testOp(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	cube, l2, res, err := wal.Recover(dir, wal.Options{}, newCube(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if res.Replayed != 4 || res.TornTail {
		t.Fatalf("recovery = %+v, want all 4 appends intact", res)
	}
	got, err := cube.Query(core.Range{TimeLo: 0, TimeHi: 100, Lo: []int{0, 0}, Hi: []int{7, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("recovered total = %v, want 4", got)
	}
}

func TestAppendFailsFastOnNoSpace(t *testing.T) {
	dir := t.TempDir()
	inj := fault.MustParse("wal.write:nospace@2+", 1)
	_, l, _, err := wal.Recover(dir, faultOptions(inj, wal.Options{Sync: wal.SyncNever}), newCube(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(testOp(0)); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	_, err = l.Append(testOp(1))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append 2 = %v, want ENOSPC to surface", err)
	}
	// A full disk is permanent: exactly one write attempt, no retries.
	if got := inj.Ops("wal.write"); got != 2 {
		t.Fatalf("write ops = %d, want 2 (ENOSPC must not be retried)", got)
	}
	if got := l.LastLSN(); got != 1 {
		t.Fatalf("LastLSN = %d, want 1 (failed append must not advance)", got)
	}
}

// TestSyncFailureFailsFastThenRepairs pins the no-ack-loss contract
// around fsync: a failed fsync must never be retried on the same
// descriptor (after EIO the kernel marks the dirty pages clean, so a
// retried fsync can succeed without the data reaching disk), the
// append must be nacked with a permanent error, and the next append
// must repair by reopening the segment, rolling back the nacked tail
// and reusing its LSN.
func TestSyncFailureFailsFastThenRepairs(t *testing.T) {
	dir := t.TempDir()
	inj := fault.MustParse("wal.sync:err@1", 1)
	m := wal.NewMetrics(obs.NewRegistry())
	opts := faultOptions(inj, wal.Options{Sync: wal.SyncAlways})
	opts.Metrics = m
	opts.Retry.OnRetry = nil
	_, l, _, err := wal.Recover(dir, opts, newCube(t))
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Append(testOp(0))
	if err == nil {
		t.Fatal("append was acked although its fsync failed")
	}
	if !retry.IsPermanent(err) {
		t.Fatalf("fsync failure = %v, want a permanent error", err)
	}
	if got := inj.Ops("wal.sync"); got != 1 {
		t.Fatalf("sync ops = %d, want 1 (a failed fsync must not be retried)", got)
	}
	if got := m.Retries.Value(); got != 0 {
		t.Fatalf("retries metric = %v, want 0", got)
	}
	if got := m.SyncFailures.Value(); got != 1 {
		t.Fatalf("sync-failures metric = %v, want 1", got)
	}
	// While latched, even a sync with nothing new to flush fails fast.
	if err := l.Sync(); !retry.IsPermanent(err) {
		t.Fatalf("Sync while latched = %v, want the permanent latched error", err)
	}

	// The @1 fault is spent: the next append reopens the segment,
	// drops the nacked record and reuses its LSN.
	lsn, err := l.Append(testOp(1))
	if err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if lsn != 1 {
		t.Fatalf("repaired append LSN = %d, want 1 (nacked record's LSN reused)", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	cube, l2, res, err := wal.Recover(dir, wal.Options{}, newCube(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if res.Replayed != 1 || res.TornTail {
		t.Fatalf("recovery = %+v, want exactly the one acked record", res)
	}
	got, err := cube.Query(core.Range{TimeLo: 0, TimeHi: 100, Lo: []int{0, 0}, Hi: []int{7, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("recovered total = %v, want 1 (only the acked append)", got)
	}
}

func TestMidLogCorruptionRefusesRecovery(t *testing.T) {
	dir := t.TempDir()
	_, l, _, err := wal.Recover(dir, wal.Options{Sync: wal.SyncNever}, newCube(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(testOp(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte inside the SECOND record (segment header is
	// 16 bytes, each frame is 8 bytes of header + 27 bytes of payload
	// for a 2-coordinate op). Valid records follow, so this is mid-log
	// corruption, not a torn tail.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	flipByte(t, segs[0], 16+(8+27)+8+3)

	_, _, _, err = wal.Recover(dir, wal.Options{}, newCube(t))
	if err == nil {
		t.Fatal("recovery accepted a log with mid-log corruption")
	}
	var ce *wal.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T %v, want *wal.CorruptError", err, err)
	}
	if ce.LSN != 2 {
		t.Fatalf("corrupt LSN = %d, want 2", ce.LSN)
	}
	if !strings.Contains(err.Error(), "log corrupt at LSN 2") ||
		!strings.Contains(err.Error(), ".corrupt") {
		t.Fatalf("error %q should name the LSN and the quarantine step", err)
	}
	// The damaged segment must be left exactly as found.
	if _, err := os.Stat(segs[0]); err != nil {
		t.Fatalf("segment should be untouched: %v", err)
	}
}

func TestCorruptCheckpointQuarantined(t *testing.T) {
	dir := t.TempDir()
	cube, l, _, err := wal.Recover(dir, wal.Options{Sync: wal.SyncNever, KeepCheckpoints: 2}, newCube(t))
	if err != nil {
		t.Fatal(err)
	}
	cube.SetOpSink(func(op core.Op) error { _, err := l.Append(op); return err })
	for i := 0; i < 10; i++ {
		op := testOp(i)
		if err := cube.Insert(op.Time, op.Coords, op.Value); err != nil {
			t.Fatal(err)
		}
		if i == 4 {
			if _, err := l.Checkpoint(cube.Save); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := l.Checkpoint(cube.Save); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	ckpts, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if err != nil || len(ckpts) != 2 {
		t.Fatalf("checkpoints: %v %v", ckpts, err)
	}
	newest := ckpts[len(ckpts)-1]
	if err := os.WriteFile(newest, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	back, l2, res, err := wal.Recover(dir, wal.Options{}, newCube(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if res.CheckpointsSkipped != 1 || res.CheckpointLSN != 5 {
		t.Fatalf("recovery = %+v, want fallback to checkpoint 5", res)
	}
	if len(res.QuarantinedCheckpoints) != 1 || res.QuarantinedCheckpoints[0] != newest+".corrupt" {
		t.Fatalf("quarantined = %v, want [%s.corrupt]", res.QuarantinedCheckpoints, newest)
	}
	if _, err := os.Stat(newest + ".corrupt"); err != nil {
		t.Fatalf("quarantined bytes should stay on disk: %v", err)
	}
	if _, err := os.Stat(newest); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("original corrupt checkpoint should be gone, stat = %v", err)
	}
	got, err := back.Query(core.Range{TimeLo: 0, TimeHi: 100, Lo: []int{0, 0}, Hi: []int{7, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("recovered total = %v, want 10", got)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
