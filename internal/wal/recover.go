package wal

import (
	"errors"
	"fmt"
	"os"

	"histcube/internal/core"
)

// quarantineCheckpoint renames a checkpoint that core.Load proved
// corrupt aside (suffix ".corrupt"): the next boot will not trip over
// it again, and its bytes stay on disk for inspection. The rename is
// best-effort — when it fails the file is merely skipped, as before.
// Only proven corruption earns the rename; callers must not quarantine
// on open errors, which say nothing about the bytes.
func quarantineCheckpoint(path string, res *RecoverResult, m *Metrics) {
	res.CheckpointsSkipped++
	if err := os.Rename(path, path+".corrupt"); err == nil {
		res.QuarantinedCheckpoints = append(res.QuarantinedCheckpoints, path+".corrupt")
		if m != nil {
			m.QuarantinedCkpts.Inc()
		}
	}
}

// RecoverResult reports what recovery found and did.
type RecoverResult struct {
	// CheckpointLSN is the LSN covered by the checkpoint that seeded
	// the cube (0 when recovery started from an empty cube).
	CheckpointLSN uint64
	// CheckpointsSkipped counts unreadable checkpoint files passed
	// over before a loadable one (or none) was found.
	CheckpointsSkipped int
	// QuarantinedCheckpoints lists the new paths of proven-corrupt
	// checkpoint files renamed aside (suffix ".corrupt") so they leave
	// the checkpoint namespace but stay on disk for inspection.
	QuarantinedCheckpoints []string
	// Replayed counts log records re-applied on top of the checkpoint.
	Replayed int
	// SkippedOps counts replayed records whose re-apply failed; they
	// failed identically when first logged, so skipping them
	// reproduces the pre-crash state.
	SkippedOps int
	// TornTail reports that a torn final record (an append interrupted
	// by the crash) was truncated away.
	TornTail bool
}

// Recover opens the durable directory (creating it when absent),
// loads the newest readable checkpoint, replays the log tail on top
// of it, truncates a torn final record, and returns the recovered
// cube together with a Log positioned for further appends.
//
// newCube constructs the empty cube used when no checkpoint exists
// (first boot, or every checkpoint unreadable but the log intact from
// LSN 1). The recovered cube does not yet have an op sink attached —
// the caller wires cube.SetOpSink to log.Append after Recover, so
// replay never re-logs.
func Recover(dir string, opts Options, newCube func() (*core.Cube, error)) (*core.Cube, *Log, RecoverResult, error) {
	opts = opts.withDefaults()
	var res RecoverResult
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, res, err
	}

	// 1. Seed from the newest checkpoint that loads.
	ckpts, err := listCheckpoints(dir)
	if err != nil {
		return nil, nil, res, err
	}
	var cube *core.Cube
	var ckptAt int64
	for i := len(ckpts) - 1; i >= 0; i-- {
		f, err := os.Open(ckpts[i].path)
		if err != nil {
			// An open failure can be transient (EMFILE, EACCES, momentary
			// I/O) and proves nothing about the content: skip the file for
			// this boot but leave it in place — renaming it away would
			// permanently drop the newest checkpoint and, once older
			// segments are pruned past it, turn a transient fault into a
			// permanent log-gap failure on every later boot.
			res.CheckpointsSkipped++
			continue
		}
		c, lerr := core.Load(f)
		_ = f.Close() // read-only; core.Load already validated what was read
		if lerr != nil {
			quarantineCheckpoint(ckpts[i].path, &res, opts.Metrics)
			continue
		}
		cube = c
		res.CheckpointLSN = ckpts[i].seq
		if fi, err := os.Stat(ckpts[i].path); err == nil {
			ckptAt = fi.ModTime().UnixNano()
		}
		break
	}
	if cube == nil {
		if cube, err = newCube(); err != nil {
			return nil, nil, res, err
		}
	}

	// 2. Replay the log tail. Records carry implicit LSNs (segment
	// firstLSN + index); everything at or below the checkpoint is
	// already in the snapshot and is skipped.
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, res, err
	}
	lastLSN := res.CheckpointLSN
	if len(segs) > 0 && res.CheckpointLSN != 0 && segs[0].seq > res.CheckpointLSN+1 {
		return nil, nil, res, fmt.Errorf("wal: log gap after checkpoint %d: oldest segment starts at LSN %d",
			res.CheckpointLSN, segs[0].seq)
	}
	for i, sg := range segs {
		last := i == len(segs)-1
		first, ops, goodLen, torn, err := readSegment(sg.path)
		if err != nil {
			// Mid-log corruption is fatal wherever it sits — even in the
			// final segment, valid records after the damage prove that
			// acknowledged history would be lost by truncating.
			var ce *CorruptError
			if errors.As(err, &ce) {
				return nil, nil, res, err
			}
			if !last {
				return nil, nil, res, fmt.Errorf("wal: unreadable mid-log segment: %w", err)
			}
			// A final segment without even a valid header is the
			// remains of an interrupted rotation: nothing in it was
			// ever acknowledged, so discard it.
			if rerr := os.Remove(sg.path); rerr != nil {
				return nil, nil, res, rerr
			}
			res.TornTail = true
			segs = segs[:i]
			break
		}
		if torn {
			if !last {
				return nil, nil, res, fmt.Errorf("wal: segment %s corrupt before the log tail", sg.path)
			}
			if terr := os.Truncate(sg.path, goodLen); terr != nil {
				return nil, nil, res, terr
			}
			res.TornTail = true
			if m := opts.Metrics; m != nil {
				m.TornTruncations.Inc()
			}
		}
		if first != sg.seq {
			return nil, nil, res, fmt.Errorf("wal: segment %s header LSN %d does not match its name", sg.path, first)
		}
		for j, op := range ops {
			lsn := first + uint64(j)
			if lsn <= res.CheckpointLSN {
				continue
			}
			if aerr := cube.ApplyOp(op); aerr != nil {
				res.SkippedOps++
				if m := opts.Metrics; m != nil {
					m.ReplaySkipped.Inc()
				}
			} else {
				res.Replayed++
				if m := opts.Metrics; m != nil {
					m.Replayed.Inc()
				}
			}
		}
		if end := first + uint64(len(ops)) - 1; len(ops) > 0 && end > lastLSN {
			lastLSN = end
		} else if len(ops) == 0 && first > 0 && first-1 > lastLSN {
			// An empty segment still proves every LSN below its first
			// was allocated.
			lastLSN = first - 1
		}
	}

	// 3. Position the log for appends: continue the last segment, or
	// start a fresh one.
	// Everything recovery just read and validated is on disk by
	// definition, so the opening position doubles as the durable
	// baseline (durableBytes/durableLSN).
	l := &Log{dir: dir, opts: opts, nextLSN: lastLSN + 1, durableLSN: lastLSN,
		shippedLSN: lastLSN, ckptLSN: res.CheckpointLSN, segCount: len(segs)}
	if ckptAt != 0 {
		l.ckptNano.Store(ckptAt)
	}
	if len(segs) > 0 {
		sg := segs[len(segs)-1]
		fi, err := os.Stat(sg.path)
		if err != nil {
			return nil, nil, res, err
		}
		f, err := os.OpenFile(sg.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, res, err
		}
		l.f = l.wrapSeg(f)
		l.segFirst = sg.seq
		l.segBytes = fi.Size()
		l.durableBytes = fi.Size()
	} else {
		f, err := createSegment(dir, l.nextLSN)
		if err != nil {
			return nil, nil, res, err
		}
		l.f = l.wrapSeg(f)
		l.segFirst = l.nextLSN
		l.segBytes = segHeaderSize
		l.durableBytes = segHeaderSize
		l.segCount = 1
	}
	l.startSyncLoop()
	return cube, l, res, nil
}
