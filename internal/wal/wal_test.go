package wal

import (
	"math/rand"
	"os"
	"testing"

	"histcube/internal/agg"
	"histcube/internal/core"
)

func newTestCube(t *testing.T) *core.Cube {
	t.Helper()
	c, err := core.New(core.Config{
		Dims:             []core.Dim{{Name: "x", Size: 8}, {Name: "y", Size: 4}},
		Operator:         agg.Sum,
		BufferOutOfOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// randomOps generates a replayable mix of in-order inserts, deletes
// and out-of-order corrections.
func randomOps(r *rand.Rand, n int) []core.Op {
	ops := make([]core.Op, 0, n)
	now := int64(1)
	for i := 0; i < n; i++ {
		var tv int64
		if r.Intn(6) == 0 && now > 1 {
			tv = int64(r.Intn(int(now))) // out of order
		} else {
			if r.Intn(3) == 0 {
				now++
			}
			tv = now
		}
		kind := core.OpInsert
		if r.Intn(5) == 0 {
			kind = core.OpDelete
		}
		ops = append(ops, core.Op{
			Kind:   kind,
			Time:   tv,
			Coords: []int{r.Intn(8), r.Intn(4)},
			Value:  float64(r.Intn(9) + 1),
		})
	}
	return ops
}

// run applies ops through the cube with the log attached as sink.
func run(t *testing.T, c *core.Cube, l *Log, ops []core.Op) {
	t.Helper()
	c.SetOpSink(func(op core.Op) error {
		_, err := l.Append(op)
		return err
	})
	for _, op := range ops {
		var err error
		switch op.Kind {
		case core.OpInsert:
			err = c.Insert(op.Time, op.Coords, op.Value)
		case core.OpDelete:
			err = c.Delete(op.Time, op.Coords, op.Value)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// assertEquivalent compares the two cubes on a spread of range
// queries.
func assertEquivalent(t *testing.T, want, got *core.Cube, r *rand.Rand) {
	t.Helper()
	for q := 0; q < 60; q++ {
		lo := []int{r.Intn(8), r.Intn(4)}
		hi := []int{lo[0] + r.Intn(8-lo[0]), lo[1] + r.Intn(4-lo[1])}
		tLo := int64(r.Intn(40))
		rng := core.Range{TimeLo: tLo, TimeHi: tLo + int64(r.Intn(40)), Lo: lo, Hi: hi}
		w, err := want.Query(rng)
		if err != nil {
			t.Fatal(err)
		}
		g, err := got.Query(rng)
		if err != nil {
			t.Fatal(err)
		}
		if w != g {
			t.Fatalf("query %+v: recovered %v, want %v", rng, g, w)
		}
	}
	ws, gs := want.Stats(), got.Stats()
	if ws.AppendedUpdates != gs.AppendedUpdates || ws.OutOfOrderUpdates != gs.OutOfOrderUpdates ||
		ws.PendingOutOfOrder != gs.PendingOutOfOrder || ws.Slices != gs.Slices {
		t.Fatalf("stats diverge: recovered %+v, want %+v", gs, ws)
	}
}

func recoverCube(t *testing.T, dir string, opts Options) (*core.Cube, *Log, RecoverResult) {
	t.Helper()
	c, l, res, err := Recover(dir, opts, func() (*core.Cube, error) { return newTestCube(t), nil })
	if err != nil {
		t.Fatal(err)
	}
	return c, l, res
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(1))
	ops := randomOps(r, 500)

	live, l, res := recoverCube(t, dir, Options{Sync: SyncNever})
	if res.Replayed != 0 || res.CheckpointLSN != 0 {
		t.Fatalf("fresh dir recovered %+v", res)
	}
	run(t, live, l, ops)
	if got := l.LastLSN(); got != uint64(len(ops)) {
		t.Fatalf("LastLSN = %d, want %d", got, len(ops))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	back, l2, res2 := recoverCube(t, dir, Options{})
	defer l2.Close()
	if res2.Replayed != len(ops) || res2.TornTail || res2.SkippedOps != 0 {
		t.Fatalf("recovery = %+v, want %d replayed", res2, len(ops))
	}
	assertEquivalent(t, live, back, rand.New(rand.NewSource(2)))
}

func TestRecoveryWithoutCleanClose(t *testing.T) {
	// Simulate a crash: the log is abandoned (no Close) and the
	// directory re-opened. Under SyncAlways everything appended must
	// come back.
	dir := t.TempDir()
	r := rand.New(rand.NewSource(3))
	ops := randomOps(r, 120)
	live, l, _ := recoverCube(t, dir, Options{Sync: SyncAlways})
	run(t, live, l, ops)
	// no l.Close(): crash

	back, l2, res := recoverCube(t, dir, Options{})
	defer l2.Close()
	if res.Replayed != len(ops) {
		t.Fatalf("replayed %d, want %d", res.Replayed, len(ops))
	}
	assertEquivalent(t, live, back, rand.New(rand.NewSource(4)))
}

func TestSegmentRotationAndContinuation(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(5))
	ops := randomOps(r, 400)
	live, l, _ := recoverCube(t, dir, Options{Sync: SyncNever, SegmentSize: 512})
	run(t, live, l, ops)
	if l.Segments() < 3 {
		t.Fatalf("expected several segments at 512-byte rotation, got %d", l.Segments())
	}
	l.Close()

	// Recover and keep appending: LSNs continue, state matches.
	back, l2, _ := recoverCube(t, dir, Options{Sync: SyncNever, SegmentSize: 512})
	if got := l2.LastLSN(); got != uint64(len(ops)) {
		t.Fatalf("LastLSN after recovery = %d, want %d", got, len(ops))
	}
	more := randomOps(rand.New(rand.NewSource(6)), 100)
	run(t, live, mustDiscard(t, t.TempDir()), more) // mirror into live via throwaway log
	run(t, back, l2, more)
	l2.Close()
	assertEquivalent(t, live, back, rand.New(rand.NewSource(7)))
}

// mustDiscard returns a log in a scratch dir, so the "want" cube can
// run through the same code path without polluting the dir under test.
func mustDiscard(t *testing.T, dir string) *Log {
	t.Helper()
	_, l, _, err := Recover(dir, Options{Sync: SyncNever}, func() (*core.Cube, error) {
		return newTestCube(t), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(8))
	ops := randomOps(r, 50)
	live, l, _ := recoverCube(t, dir, Options{Sync: SyncNever})
	run(t, live, l, ops)
	l.Close()

	// Tear the final record: chop a few bytes off the last segment.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatal("no segments", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last.path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last.path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	back, l2, res := recoverCube(t, dir, Options{})
	if !res.TornTail {
		t.Fatal("torn tail not reported")
	}
	if res.Replayed != len(ops)-1 {
		t.Fatalf("replayed %d, want %d (one torn)", res.Replayed, len(ops)-1)
	}
	// The torn record is gone for good: appending continues from the
	// truncated position and a further recovery sees a clean log.
	if got := l2.LastLSN(); got != uint64(len(ops)-1) {
		t.Fatalf("LastLSN = %d, want %d", got, len(ops)-1)
	}
	if _, err := l2.Append(core.Op{Kind: core.OpInsert, Time: 1000, Coords: []int{0, 0}, Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := back.ApplyOp(core.Op{Kind: core.OpInsert, Time: 1000, Coords: []int{0, 0}, Value: 1}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	again, l3, res3 := recoverCube(t, dir, Options{})
	defer l3.Close()
	if res3.TornTail {
		t.Fatal("second recovery still sees a torn tail")
	}
	assertEquivalent(t, back, again, rand.New(rand.NewSource(9)))
}

func TestGarbageTailTruncated(t *testing.T) {
	// Garbage appended after the last good record (a torn write that
	// made it partially to disk) is cut off, not fatal.
	dir := t.TempDir()
	live, l, _ := recoverCube(t, dir, Options{Sync: SyncNever})
	run(t, live, l, randomOps(rand.New(rand.NewSource(10)), 20))
	l.Close()
	segs, _ := listSegments(dir)
	appendBytes(t, segs[len(segs)-1].path, []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03})

	back, l2, res := recoverCube(t, dir, Options{})
	defer l2.Close()
	if !res.TornTail {
		t.Fatal("garbage tail not reported as torn")
	}
	if res.Replayed != 20 {
		t.Fatalf("replayed %d, want 20", res.Replayed)
	}
	assertEquivalent(t, live, back, rand.New(rand.NewSource(11)))
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(12))
	live, l, _ := recoverCube(t, dir, Options{Sync: SyncNever, SegmentSize: 256, KeepCheckpoints: 1})
	run(t, live, l, randomOps(r, 300))
	before := l.Segments()
	lsn, err := l.Checkpoint(live.Save)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 300 {
		t.Fatalf("checkpoint LSN = %d, want 300", lsn)
	}
	if after := l.Segments(); after >= before {
		t.Fatalf("checkpoint kept %d segments (was %d)", after, before)
	}
	if l.SinceCheckpoint() != 0 {
		t.Fatal("SinceCheckpoint not reset")
	}

	// More appends after the checkpoint; recovery = checkpoint + tail.
	run(t, live, l, randomOps(rand.New(rand.NewSource(13)), 40))
	l.Close()
	back, l2, res := recoverCube(t, dir, Options{})
	defer l2.Close()
	if res.CheckpointLSN != 300 || res.Replayed != 40 {
		t.Fatalf("recovery = %+v, want checkpoint 300 + 40 replayed", res)
	}
	assertEquivalent(t, live, back, rand.New(rand.NewSource(14)))
}

func TestMaybeCheckpointEveryN(t *testing.T) {
	dir := t.TempDir()
	live, l, _ := recoverCube(t, dir, Options{Sync: SyncNever})
	ops := randomOps(rand.New(rand.NewSource(15)), 25)
	ckpts := 0
	live.SetOpSink(func(op core.Op) error {
		_, err := l.Append(op)
		return err
	})
	for _, op := range ops {
		if err := live.Insert(op.Time, op.Coords, op.Value); err != nil {
			t.Fatal(err)
		}
		ran, err := l.MaybeCheckpoint(10, live.Save)
		if err != nil {
			t.Fatal(err)
		}
		if ran {
			ckpts++
		}
	}
	if ckpts != 2 {
		t.Fatalf("25 appends at every=10 ran %d checkpoints, want 2", ckpts)
	}
	if ran, _ := l.MaybeCheckpoint(0, live.Save); ran {
		t.Fatal("every=0 must disable automatic checkpoints")
	}
	l.Close()
}

func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(16))
	live, l, _ := recoverCube(t, dir, Options{Sync: SyncNever, KeepCheckpoints: 2})
	run(t, live, l, randomOps(r, 100))
	if _, err := l.Checkpoint(live.Save); err != nil {
		t.Fatal(err)
	}
	run(t, live, l, randomOps(r, 100))
	if _, err := l.Checkpoint(live.Save); err != nil {
		t.Fatal(err)
	}
	run(t, live, l, randomOps(r, 30))
	l.Close()

	ckpts, _ := listCheckpoints(dir)
	if len(ckpts) != 2 {
		t.Fatalf("have %d checkpoints, want 2", len(ckpts))
	}
	corruptFile(t, ckpts[1].path) // newest

	back, l2, res := recoverCube(t, dir, Options{})
	defer l2.Close()
	if res.CheckpointsSkipped != 1 || res.CheckpointLSN != 100 {
		t.Fatalf("recovery = %+v, want fallback to checkpoint 100", res)
	}
	if res.Replayed != 130 {
		t.Fatalf("replayed %d, want 130 (everything after the old checkpoint)", res.Replayed)
	}
	assertEquivalent(t, live, back, rand.New(rand.NewSource(17)))
}

// appendBytes writes raw bytes to the end of path.
func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// corruptFile stomps the head of path so decoding it fails.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("corrupted checkpoint!!"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestAppendOnClosedLog(t *testing.T) {
	dir := t.TempDir()
	_, l, _ := recoverCube(t, dir, Options{Sync: SyncNever})
	l.Close()
	if _, err := l.Append(core.Op{Kind: core.OpInsert, Coords: []int{0, 0}}); err != ErrClosed {
		t.Fatalf("append on closed log: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	ops := []core.Op{
		{Kind: core.OpInsert, Time: 42, Coords: []int{1, 2, 3}, Value: 3.25},
		{Kind: core.OpDelete, Time: -7, Coords: []int{0}, Value: -1e300},
		{Kind: core.OpAddDelta, Time: 1 << 60, Coords: nil, Value: 0},
	}
	for _, op := range ops {
		rec, err := appendRecord(nil, op)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodePayload(rec[recHeaderSize:])
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != op.Kind || got.Time != op.Time || got.Value != op.Value ||
			len(got.Coords) != len(op.Coords) {
			t.Fatalf("round trip %+v -> %+v", op, got)
		}
		for i := range op.Coords {
			if got.Coords[i] != op.Coords[i] {
				t.Fatalf("coords %v -> %v", op.Coords, got.Coords)
			}
		}
	}
}
