package wal

// Follower half of WAL shipping: applying records received from a
// primary. It lives here — not in the server — because replication
// replay is the same trusted path as crash-recovery replay: the only
// two places allowed to call core.ApplyOp directly (the
// appendbeforeapply analyzer enforces that confinement). Everywhere
// else, mutations must go through the cube's op sink so they are
// logged before they are applied.

import (
	"fmt"

	"histcube/internal/core"
)

// ApplyReplicated durably appends one shipped record to the local log
// and applies it to the cube, enforcing that the shipped LSN continues
// the local sequence exactly — any gap or overlap means the follower
// diverged from the primary and must re-bootstrap rather than apply.
//
// skipped reports an op the cube rejected. The primary logs ops before
// applying them, so a rejected op sits in its log too and recovery
// replay skips it there identically (see Recover); skipping keeps the
// replica bit-identical to a primary that crashed and recovered.
func (l *Log) ApplyReplicated(cube *core.Cube, lsn uint64, op core.Op) (skipped bool, err error) {
	if want := l.LastLSN() + 1; lsn != want {
		return false, fmt.Errorf("wal: shipped LSN %d does not continue the local log (want %d)", lsn, want)
	}
	got, err := l.Append(op)
	if err != nil {
		return false, fmt.Errorf("wal: appending shipped record %d: %w", lsn, err)
	}
	if got != lsn {
		return false, fmt.Errorf("wal: shipped record %d landed at local LSN %d", lsn, got)
	}
	if aerr := cube.ApplyOp(op); aerr != nil {
		return true, nil
	}
	return false, nil
}
