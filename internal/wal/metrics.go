package wal

import "histcube/internal/obs"

// Metrics bundles the WAL's counters and histograms. Pass one (from
// NewMetrics) in Options to instrument a log; a nil Metrics disables
// instrumentation with a single branch per event. Gauges derived from
// live log state are registered separately via Log.RegisterStateMetrics
// once the log exists.
type Metrics struct {
	Appends          *obs.Counter
	AppendedBytes    *obs.Counter
	Fsyncs           *obs.Counter
	Rotations        *obs.Counter
	Checkpoints      *obs.Counter
	CheckpointErrors *obs.Counter
	Replayed         *obs.Counter
	ReplaySkipped    *obs.Counter
	TornTruncations  *obs.Counter
	Retries          *obs.Counter
	SyncFailures     *obs.Counter
	QuarantinedCkpts *obs.Counter

	CheckpointDuration *obs.Histogram
}

// NewMetrics registers the WAL metric families on reg under the
// histcube_wal_ prefix.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Appends:       reg.NewCounter("histcube_wal_appends_total", "Records appended to the write-ahead log."),
		AppendedBytes: reg.NewCounter("histcube_wal_appended_bytes_total", "Bytes appended to the write-ahead log."),
		Fsyncs:        reg.NewCounter("histcube_wal_fsyncs_total", "fsync calls issued for the active segment."),
		Rotations:     reg.NewCounter("histcube_wal_segment_rotations_total", "Segment rotations."),
		Checkpoints:   reg.NewCounter("histcube_wal_checkpoints_total", "Checkpoints written."),
		CheckpointErrors: reg.NewCounter("histcube_wal_checkpoint_errors_total",
			"Checkpoint attempts that failed (the log keeps growing)."),
		Replayed: reg.NewCounter("histcube_wal_replayed_records_total",
			"Log records re-applied during crash recovery."),
		ReplaySkipped: reg.NewCounter("histcube_wal_replay_skipped_total",
			"Replayed records whose re-apply failed (they failed identically when first logged)."),
		TornTruncations: reg.NewCounter("histcube_wal_torn_truncations_total",
			"Torn final records truncated during recovery."),
		Retries: reg.NewCounter("histcube_wal_retries_total",
			"Transient segment write errors absorbed by retry (fsync is never retried)."),
		SyncFailures: reg.NewCounter("histcube_wal_sync_failures_total",
			"fsync failures that latched the log until the segment was reopened."),
		QuarantinedCkpts: reg.NewCounter("histcube_wal_quarantined_checkpoints_total",
			"Checkpoint files proven corrupt and renamed aside during recovery."),
		CheckpointDuration: reg.NewHistogram("histcube_wal_checkpoint_duration_seconds",
			"Duration of checkpoint writes (snapshot + fsync + prune).", nil),
	}
}
