package wal

import (
	"io"
	"os"
	"path/filepath"
	"time"

	"histcube/internal/obs"
)

// Checkpoint writes a snapshot of the current state through save
// (typically core.Cube.Save), records the LSN it covers, rotates the
// active segment, and removes log segments and checkpoint files made
// obsolete. It returns the covered LSN. The caller must guarantee that
// save observes a state that includes every appended record up to the
// returned LSN and nothing beyond — in practice: call Checkpoint under
// the same lock that serialises mutations.
func (l *Log) Checkpoint(save func(io.Writer) error) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpointLocked(save)
}

// MaybeCheckpoint checkpoints when at least every records were
// appended since the last checkpoint; every <= 0 disables automatic
// checkpoints. It reports whether a checkpoint ran.
func (l *Log) MaybeCheckpoint(every int64, save func(io.Writer) error) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if every <= 0 || l.sinceCkpt < every {
		return false, nil
	}
	_, err := l.checkpointLocked(save)
	return true, err
}

func (l *Log) checkpointLocked(save func(io.Writer) error) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	timer := obs.NewTimer(nil)
	if m := l.opts.Metrics; m != nil {
		timer = obs.NewTimer(m.CheckpointDuration)
	}
	lsn := l.nextLSN - 1
	// Make the log consistent through lsn first: the snapshot must
	// never be newer than the durable log it truncates.
	if err := l.syncLocked(); err != nil {
		return 0, l.ckptFailed(err)
	}
	tmp := filepath.Join(l.dir, "checkpoint.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return 0, l.ckptFailed(err)
	}
	err = save(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, l.ckptFailed(err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, ckptName(lsn))); err != nil {
		os.Remove(tmp)
		return 0, l.ckptFailed(err)
	}
	if err := syncDir(l.dir); err != nil {
		return 0, l.ckptFailed(err)
	}
	l.ckptLSN = lsn
	l.sinceCkpt = 0
	l.ckptNano.Store(time.Now().UnixNano())
	// Rotate so the entire pre-checkpoint tail lives in sealed
	// segments and can be truncated; then prune. Both are best-effort:
	// the checkpoint itself is already durable.
	if l.segBytes > segHeaderSize {
		if err := l.rotateLocked(); err != nil {
			return 0, l.ckptFailed(err)
		}
	}
	l.pruneLocked()
	if m := l.opts.Metrics; m != nil {
		m.Checkpoints.Inc()
	}
	timer.ObserveDuration()
	return lsn, nil
}

func (l *Log) ckptFailed(err error) error {
	if m := l.opts.Metrics; m != nil {
		m.CheckpointErrors.Inc()
	}
	return err
}

// pruneLocked removes checkpoints beyond KeepCheckpoints and every
// sealed segment that lies entirely below the oldest retained
// checkpoint (keeping segments back that far lets recovery fall back
// past a corrupt newest checkpoint without hitting a gap in the log).
func (l *Log) pruneLocked() {
	ckpts, err := listCheckpoints(l.dir)
	if err != nil {
		return
	}
	for len(ckpts) > l.opts.KeepCheckpoints {
		os.Remove(ckpts[0].path) // sorted ascending: oldest first
		ckpts = ckpts[1:]
	}
	if len(ckpts) == 0 {
		return
	}
	oldest := ckpts[0].seq
	segs, err := listSegments(l.dir)
	if err != nil {
		return
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i].seq == l.segFirst {
			break // never the active segment
		}
		// Removable iff every record in it (LSNs [segs[i].seq,
		// segs[i+1].seq)) is covered by the oldest kept checkpoint;
		// segments are sorted, so the first survivor ends the scan.
		if segs[i+1].seq > oldest+1 {
			break
		}
		if os.Remove(segs[i].path) == nil {
			l.segCount--
		}
	}
}
