// Package wal is histcube's durability subsystem: a segmented,
// CRC32-checksummed, binary write-ahead log of the core facade's
// mutation stream, plus checkpointing and crash recovery.
//
// The paper's framework (Section 2.2) is deliberately append-only —
// updates only ever touch the latest instance R_{d-1}(t), and out-of-
// order corrections go to a side buffer — so the whole cube state is a
// deterministic function of a linear op stream. That is exactly the
// access pattern a WAL serialises for free: the log *is* the update
// stream, and replaying it against an empty (or checkpointed) cube
// reproduces the state, including the out-of-order buffer.
//
// Layout of a durable directory:
//
//	wal-<firstLSN>.seg      log segments (16-byte header + records)
//	checkpoint-<lsn>.ckpt   core.Save snapshots covering LSNs <= lsn
//
// LSNs start at 1 and increase by one per appended record. A
// checkpoint file named for LSN n makes every record with LSN <= n
// redundant; checkpointing rotates the active segment and deletes
// segments that lie entirely below the oldest retained checkpoint, so
// the directory stays bounded by the checkpoint cadence. Recovery
// (see Recover) loads the newest readable checkpoint, replays the log
// tail, and truncates — rather than fails on — a torn final record.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"histcube/internal/core"
	"histcube/internal/obs"
	"histcube/internal/retry"
)

// SegmentFile is the slice of *os.File the log needs from its active
// segment. It exists so tests (and the fault injector) can interpose
// on segment I/O via Options.WrapSegment without touching real files.
type SegmentFile interface {
	io.Writer
	Sync() error
	Close() error
	Truncate(size int64) error
}

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record is
	// durable, at one fsync per record.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer (Options.SyncEvery): crash loss is
	// bounded by the interval.
	SyncInterval
	// SyncNever leaves flushing to the OS (and to rotation, checkpoint
	// and Close): fastest, weakest.
	SyncNever
)

// ParseSyncPolicy maps the flag spellings "always", "interval" and
// "never" to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// String names the policy as ParseSyncPolicy spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("syncpolicy(%d)", int(p))
	}
}

// Options configures a Log.
type Options struct {
	// SegmentSize is the rotation threshold in bytes; 0 selects 4 MiB.
	SegmentSize int64
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period; 0 selects 100ms.
	SyncEvery time.Duration
	// KeepCheckpoints retains the newest N checkpoint files (log
	// segments are kept back to the oldest retained one, so recovery
	// can fall back past a corrupt checkpoint); 0 selects 2.
	KeepCheckpoints int
	// Metrics, when non-nil, receives append/fsync/checkpoint/replay
	// counters (see NewMetrics).
	Metrics *Metrics
	// Retry bounds the retry loop around segment writes; a zero value
	// selects retry.Default(). Transient write errors are absorbed
	// (after rolling back any torn partial write); permanent ones —
	// ENOSPC, retry.Permanent — surface immediately. fsync is never
	// retried: a failed fsync latches the log until the segment is
	// reopened on a fresh descriptor (see syncLocked).
	Retry retry.Policy
	// WrapSegment, when non-nil, wraps every active segment file the
	// log opens. Fault-injection tests use it to interpose torn writes
	// and I/O errors between the log and the filesystem.
	WrapSegment func(SegmentFile) SegmentFile
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = 2
	}
	if o.Retry.Attempts == 0 {
		d := retry.Default()
		d.Sleep, d.Rand, d.OnRetry = o.Retry.Sleep, o.Retry.Rand, o.Retry.OnRetry
		o.Retry = d
	}
	if o.Retry.OnRetry == nil && o.Metrics != nil {
		m := o.Metrics
		o.Retry.OnRetry = func(string, int, error) { m.Retries.Inc() }
	}
	return o
}

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Log is an open write-ahead log positioned for appends. Construct one
// through Recover; all methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         SegmentFile // active segment; guarded by mu
	segFirst  uint64      // first LSN of the active segment; guarded by mu
	segBytes  int64       // bytes written to the active segment; guarded by mu
	segCount  int         // segment files on disk, including the active one; guarded by mu
	nextLSN   uint64      // guarded by mu
	dirty     bool        // unsynced appends; guarded by mu
	sinceCkpt int64       // guarded by mu
	ckptLSN   uint64      // guarded by mu
	closed    bool        // guarded by mu
	buf       []byte      // encode scratch; guarded by mu

	// durableBytes/durableLSN record the active-segment length and last
	// LSN covered by a successful fsync; syncFailed latches an fsync
	// error until reopenAfterSyncFailureLocked re-establishes a durable
	// baseline. All guarded by mu.
	durableBytes int64
	durableLSN   uint64
	syncFailed   error

	// Replication state (see stream.go). shippedLSN is the shipping
	// frontier: the last LSN whose Append returned success, so the last
	// LSN a Stream may deliver. ring caches recently appended records
	// for catch-up reads; waiters holds channels closed on the next
	// successful append to wake blocked Streams. All guarded by mu.
	shippedLSN uint64
	ring       []streamRec
	waiters    []chan struct{}

	ckptNano atomic.Int64 // wall time of the last checkpoint, 0 before

	// bytesAppended counts record bytes appended since the log was
	// opened, unconditionally (unlike the optional Metrics counter).
	// Atomic so per-request tracing can delta it without taking mu.
	bytesAppended atomic.Int64

	stop chan struct{} // interval-sync goroutine lifecycle
	done chan struct{}
}

// AppendedBytes returns the record bytes appended since the log was
// opened. Request tracing reads it before and after a mutation to
// attribute WAL bytes to one op.
func (l *Log) AppendedBytes() int64 { return l.bytesAppended.Load() }

func segName(first uint64) string { return fmt.Sprintf("wal-%016x.seg", first) }
func ckptName(lsn uint64) string  { return fmt.Sprintf("checkpoint-%016x.ckpt", lsn) }

// parseSeq extracts the hex sequence number from a segment or
// checkpoint file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var v uint64
	if _, err := fmt.Sscanf(mid, "%x", &v); err != nil || len(mid) == 0 {
		return 0, false
	}
	return v, true
}

type dirEntry struct {
	path string
	seq  uint64 // firstLSN for segments, covered LSN for checkpoints
}

func listDir(dir, prefix, suffix string) ([]dirEntry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []dirEntry
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), prefix, suffix); ok {
			out = append(out, dirEntry{path: filepath.Join(dir, e.Name()), seq: seq})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

func listSegments(dir string) ([]dirEntry, error)    { return listDir(dir, "wal-", ".seg") }
func listCheckpoints(dir string) ([]dirEntry, error) { return listDir(dir, "checkpoint-", ".ckpt") }

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// wrapSeg applies Options.WrapSegment to a freshly opened segment.
func (l *Log) wrapSeg(f *os.File) SegmentFile {
	if l.opts.WrapSegment != nil {
		return l.opts.WrapSegment(f)
	}
	return f
}

// createSegment writes a fresh segment file whose records start at
// first, and makes its creation durable. Segments are opened with
// O_APPEND so that a write retried after a torn-write rollback
// (Truncate back to the last good length) lands at the truncated end
// rather than at a stale file offset, which would leave a zero hole.
func createSegment(dir string, first uint64) (*os.File, error) {
	path := filepath.Join(dir, segName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(encodeSegHeader(first)); err != nil {
		_ = f.Close() // the write error is primary; the file is discarded
		return nil, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		_ = f.Close()
		return nil, err
	}
	return f, nil
}

// startSyncLoop launches the interval-fsync goroutine when the policy
// asks for one.
func (l *Log) startSyncLoop() {
	if l.opts.Sync != SyncInterval {
		return
	}
	l.stop = make(chan struct{})
	l.done = make(chan struct{})
	go func() {
		t := time.NewTicker(l.opts.SyncEvery)
		defer t.Stop()
		defer close(l.done)
		for {
			select {
			case <-l.stop:
				return
			case <-t.C:
				_ = l.Sync() // best effort; Append surfaces hard errors
			}
		}
	}()
}

// Append writes one op to the log and returns its LSN. Under
// SyncAlways the record is durable when Append returns.
func (l *Log) Append(op core.Op) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.syncFailed != nil {
		if err := l.reopenAfterSyncFailureLocked(); err != nil {
			return 0, err
		}
	}
	rec, err := appendRecord(l.buf[:0], op)
	if err != nil {
		return 0, err
	}
	l.buf = rec
	if l.segBytes+int64(len(rec)) > l.opts.SegmentSize && l.segBytes > segHeaderSize {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if err := l.writeRecordLocked(rec); err != nil {
		return 0, err
	}
	l.segBytes += int64(len(rec))
	l.bytesAppended.Add(int64(len(rec)))
	l.dirty = true
	lsn := l.nextLSN
	l.nextLSN++
	l.sinceCkpt++
	if m := l.opts.Metrics; m != nil {
		m.Appends.Inc()
		m.AppendedBytes.Add(int64(len(rec)))
	}
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	// The append is being acknowledged: it becomes shippable exactly now
	// (see stream.go for why a shipped LSN can never be rolled back).
	l.shippedLSN = lsn
	l.ringPutLocked(lsn, op)
	l.notifyWaitersLocked()
	return lsn, nil
}

// writeRecordLocked writes one framed record to the active segment
// under the retry policy. A failed or short write leaves an
// unacknowledged partial frame at the segment tail; before every
// retry that tail is rolled back with Truncate to the last good
// length, so a retried append can never produce a duplicated or
// interleaved partial frame. A rollback that itself fails is marked
// permanent — the segment tail is in an unknown state and further
// blind writes would corrupt acknowledged history.
func (l *Log) writeRecordLocked(rec []byte) error {
	return l.opts.Retry.Do("wal.append", func() error {
		n, err := l.f.Write(rec)
		if err == nil && n < len(rec) {
			err = io.ErrShortWrite
		}
		if err == nil {
			return nil
		}
		if terr := l.f.Truncate(l.segBytes); terr != nil {
			return retry.Permanent(fmt.Errorf(
				"wal: truncating torn append failed: %w (after write error: %w)", terr, err))
		}
		return fmt.Errorf("wal: segment write: %w", err)
	})
}

// rotateLocked seals the active segment (sync + close) and opens a new
// one starting at the next LSN.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := createSegment(l.dir, l.nextLSN)
	if err != nil {
		return err
	}
	l.f = l.wrapSeg(f)
	l.segFirst = l.nextLSN
	l.segBytes = segHeaderSize
	// The sync above succeeded and createSegment fsyncs the header, so
	// the whole new baseline is durable.
	l.durableBytes = segHeaderSize
	l.durableLSN = l.nextLSN - 1
	l.segCount++
	if m := l.opts.Metrics; m != nil {
		m.Rotations.Inc()
	}
	return nil
}

// syncLocked fsyncs the active segment — exactly once, never retried.
// After fsync reports an error, Linux marks the dirty pages clean
// without writing them, so a retried fsync on the same descriptor can
// return success for data that never reached disk; treating that
// success as durable would silently lose an acknowledged record on
// crash. The failure is instead latched as permanent: every sync and
// append fails fast (flipping the server read-only) until
// reopenAfterSyncFailureLocked re-establishes a durable baseline on a
// fresh descriptor.
func (l *Log) syncLocked() error {
	if l.syncFailed != nil {
		return l.latchedSyncErrLocked()
	}
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.syncFailed = err
		if m := l.opts.Metrics; m != nil {
			m.SyncFailures.Inc()
		}
		return l.latchedSyncErrLocked()
	}
	l.dirty = false
	l.durableBytes = l.segBytes
	l.durableLSN = l.nextLSN - 1
	if m := l.opts.Metrics; m != nil {
		m.Fsyncs.Inc()
	}
	return nil
}

// latchedSyncErrLocked wraps the latched fsync failure as permanent so
// no retry layer above spends attempts on it.
func (l *Log) latchedSyncErrLocked() error {
	return retry.Permanent(fmt.Errorf(
		"wal: fsync failed, segment tail not durable until the segment is reopened: %w", l.syncFailed))
}

// reopenAfterSyncFailureLocked re-establishes a durable baseline after
// a latched fsync failure. The failed fsync left the unsynced tail's
// pages clean-but-unwritten, so no later fsync on the old descriptor
// can be trusted; the segment is reopened on a fresh descriptor and
// fsynced once as proof the device accepts writes again. Under
// SyncAlways the unsynced tail holds only unacknowledged records
// (every ack implies a successful fsync), so it is first rolled back
// to the last known-durable offset and its LSNs are reused — nothing
// acknowledged is rewritten. Under SyncInterval/SyncNever acknowledged
// records may sit in the tail, so the bytes are kept: if the kernel
// really dropped them, a crash surfaces as loud mid-log corruption at
// recovery rather than silent loss — the bounded-loss window those
// policies accept. Any failure here keeps the latch, so callers stay
// degraded until a later append retries the repair.
func (l *Log) reopenAfterSyncFailureLocked() error {
	// The old descriptor may re-report the writeback error on close;
	// the fresh descriptor's fsync below is the arbiter.
	_ = l.f.Close()
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.segFirst)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return retry.Permanent(fmt.Errorf("wal: reopening segment after fsync failure: %w", err))
	}
	if l.opts.Sync == SyncAlways && l.segBytes > l.durableBytes {
		if err := f.Truncate(l.durableBytes); err != nil {
			_ = f.Close()
			return retry.Permanent(fmt.Errorf("wal: rolling back unsynced tail after fsync failure: %w", err))
		}
	}
	nf := l.wrapSeg(f)
	if err := nf.Sync(); err != nil {
		_ = nf.Close()
		return retry.Permanent(fmt.Errorf("wal: fsync on reopened segment failed: %w", err))
	}
	l.f = nf
	if l.opts.Sync == SyncAlways {
		l.sinceCkpt -= int64(l.nextLSN - (l.durableLSN + 1))
		l.segBytes = l.durableBytes
		l.nextLSN = l.durableLSN + 1
	}
	l.dirty = false
	l.syncFailed = nil
	return nil
}

// Sync forces unsynced appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// Close flushes, fsyncs and closes the log. Further appends fail with
// ErrClosed.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
		l.stop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	l.notifyWaitersLocked() // blocked Streams wake and observe closed
	return err
}

// Dir returns the durable directory.
func (l *Log) Dir() string { return l.dir }

// LastLSN returns the LSN of the most recently appended record (0
// before the first append).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// SinceCheckpoint returns the number of records appended since the
// last checkpoint (or since recovery).
func (l *Log) SinceCheckpoint() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceCkpt
}

// Segments returns the number of segment files, including the active
// one.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segCount
}

// RegisterStateMetrics registers gauges derived from the log's state:
// segment count, last LSN, records since the last checkpoint, and the
// age of the last checkpoint (-1 before the first). The gauge
// callbacks take the log's mutex at scrape time.
func (l *Log) RegisterStateMetrics(reg *obs.Registry) {
	RegisterStateMetricsFunc(reg, func() *Log { return l })
}

// RegisterStateMetricsFunc is RegisterStateMetrics reading the log
// through get at every scrape, for callers that replace their log at
// runtime (a replica re-recovering after installing a shipped
// snapshot) — the gauges follow the swap instead of pinning the first
// log. get may return nil; the gauges then report zeros (and -1 for
// the checkpoint age).
func RegisterStateMetricsFunc(reg *obs.Registry, get func() *Log) {
	reg.NewGaugeFunc("histcube_wal_segments",
		"WAL segment files on disk, including the active one.",
		func() float64 {
			if l := get(); l != nil {
				return float64(l.Segments())
			}
			return 0
		})
	reg.NewGaugeFunc("histcube_wal_last_lsn",
		"LSN of the most recently appended WAL record.",
		func() float64 {
			if l := get(); l != nil {
				return float64(l.LastLSN())
			}
			return 0
		})
	reg.NewGaugeFunc("histcube_wal_records_since_checkpoint",
		"Records appended since the last checkpoint.",
		func() float64 {
			if l := get(); l != nil {
				return float64(l.SinceCheckpoint())
			}
			return 0
		})
	reg.NewGaugeFunc("histcube_wal_checkpoint_age_seconds",
		"Seconds since the last checkpoint completed; -1 before the first.",
		func() float64 {
			l := get()
			if l == nil {
				return -1
			}
			ns := l.ckptNano.Load()
			if ns == 0 {
				return -1
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
}
