package wal

import (
	"math"
	"testing"

	"histcube/internal/core"
)

// FuzzRecordDecode drives decodePayload with arbitrary bytes: it must
// reject garbage with an error (never panic or allocate unboundedly —
// readSegment turns any decode error into a torn-tail truncation), and
// every payload it does accept must survive an encode/decode
// round-trip unchanged.
func FuzzRecordDecode(f *testing.F) {
	seedOps := []core.Op{
		{Kind: core.OpInsert, Time: 0, Coords: []int{0}, Value: 1},
		{Kind: core.OpDelete, Time: 1 << 40, Coords: []int{3, 1, 4, 1, 5}, Value: -2.5},
		{Kind: core.OpInsert, Time: -7, Coords: nil, Value: math.Inf(1)},
		{Kind: core.OpInsert, Time: 9, Coords: []int{math.MaxInt32, -1 << 31}, Value: math.NaN()},
	}
	for _, op := range seedOps {
		rec, err := appendRecord(nil, op)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec[recHeaderSize:])
	}
	// Corrupt and truncated shapes.
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, minPayload))

	f.Fuzz(func(t *testing.T, p []byte) {
		op, err := decodePayload(p)
		if err != nil {
			return
		}
		rec, err := appendRecord(nil, op)
		if err != nil {
			t.Fatalf("decoded op does not re-encode: %v (op %+v)", err, op)
		}
		op2, err := decodePayload(rec[recHeaderSize:])
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v (op %+v)", err, op)
		}
		if !opsEquivalent(op, op2) {
			t.Fatalf("round-trip changed the op:\n  first  %+v\n  second %+v", op, op2)
		}
	})
}

// opsEquivalent compares ops field by field; values are compared by
// bit pattern so NaN payloads round-trip too.
func opsEquivalent(a, b core.Op) bool {
	if a.Kind != b.Kind || a.Time != b.Time || len(a.Coords) != len(b.Coords) {
		return false
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			return false
		}
	}
	return math.Float64bits(a.Value) == math.Float64bits(b.Value)
}
