package wal

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"histcube/internal/core"
)

// streamAll drains a stream up to lsn hi, with a deadline so a stuck
// stream fails instead of hanging the test.
func streamAll(t *testing.T, s *Stream, hi uint64) []StreamRecord {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var recs []StreamRecord
	for uint64(len(recs)) == 0 || recs[len(recs)-1].LSN < hi {
		rec, err := s.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v (got %d records)", err, len(recs))
		}
		recs = append(recs, rec)
	}
	return recs
}

func TestStreamCatchUpFromDiskAndRing(t *testing.T) {
	dir := t.TempDir()
	cube := newTestCube(t)
	_, l, _, err := Recover(dir, Options{Sync: SyncNever, SegmentSize: 256}, func() (*core.Cube, error) { return cube, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ops := randomOps(rand.New(rand.NewSource(7)), 200)
	run(t, cube, l, ops)

	s, err := l.SubscribeFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	recs := streamAll(t, s, uint64(len(ops)))
	if len(recs) != len(ops) {
		t.Fatalf("streamed %d records, appended %d", len(recs), len(ops))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
		want := ops[i]
		got := rec.Op
		if got.Kind != want.Kind || got.Time != want.Time || got.Value != want.Value {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		for d := range want.Coords {
			if got.Coords[d] != want.Coords[d] {
				t.Fatalf("record %d coords: got %v want %v", i, got.Coords, want.Coords)
			}
		}
	}
}

func TestStreamBlocksUntilAppend(t *testing.T) {
	dir := t.TempDir()
	cube := newTestCube(t)
	_, l, _, err := Recover(dir, Options{Sync: SyncNever}, func() (*core.Cube, error) { return cube, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	s, err := l.SubscribeFrom(1)
	if err != nil {
		t.Fatal(err)
	}

	// Nothing appended yet: Next must respect the ctx deadline...
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, nerr := s.Next(ctx)
	cancel()
	if !errors.Is(nerr, context.DeadlineExceeded) {
		t.Fatalf("Next on empty log: %v, want deadline exceeded", nerr)
	}

	// ...and a concurrent append must wake a blocked Next.
	go func() {
		time.Sleep(30 * time.Millisecond)
		if _, err := l.Append(core.Op{Kind: core.OpInsert, Time: 1, Coords: []int{1, 1}, Value: 2}); err != nil {
			t.Error(err)
		}
	}()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	rec, err := s.Next(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LSN != 1 || rec.Op.Value != 2 {
		t.Fatalf("got %+v", rec)
	}

	// A timed-out waiter must be removed from the wait list, or idle
	// keepalive polling would grow it without bound.
	ctx3, cancel3 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	_, _ = s.Next(ctx3)
	cancel3()
	l.mu.Lock()
	waiters := len(l.waiters)
	l.mu.Unlock()
	if waiters != 0 {
		t.Fatalf("%d waiters left registered after ctx timeout", waiters)
	}
}

func TestSubscribeBoundsErrors(t *testing.T) {
	dir := t.TempDir()
	cube := newTestCube(t)
	_, l, _, err := Recover(dir, Options{Sync: SyncNever, SegmentSize: 128}, func() (*core.Cube, error) { return cube, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	run(t, cube, l, randomOps(rand.New(rand.NewSource(3)), 100))
	// Two checkpoints so pruning advances the retention horizon past
	// LSN 1 (KeepCheckpoints defaults to 2).
	if _, err := l.Checkpoint(cube.Save); err != nil {
		t.Fatal(err)
	}
	run(t, cube, l, randomOps(rand.New(rand.NewSource(4)), 100))
	if _, err := l.Checkpoint(cube.Save); err != nil {
		t.Fatal(err)
	}
	oldest := l.OldestLSN()
	if oldest <= 1 {
		t.Fatalf("pruning did not advance the horizon: oldest=%d", oldest)
	}

	if _, err := l.SubscribeFrom(1); !errors.Is(err, ErrTruncated) {
		t.Fatalf("SubscribeFrom(1) after pruning: %v, want ErrTruncated", err)
	}
	if _, err := l.SubscribeFrom(l.LastLSN() + 2); !errors.Is(err, ErrFutureLSN) {
		t.Fatalf("SubscribeFrom beyond end: %v, want ErrFutureLSN", err)
	}
	if _, err := l.SubscribeFrom(oldest); err != nil {
		t.Fatalf("SubscribeFrom(oldest): %v", err)
	}
}

func TestStreamSurvivesRotationAndCheckpointPruning(t *testing.T) {
	dir := t.TempDir()
	cube := newTestCube(t)
	_, l, _, err := Recover(dir, Options{Sync: SyncNever, SegmentSize: 128}, func() (*core.Cube, error) { return cube, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Interleave appends and checkpoints while a subscriber tails from
	// the current position; it must see every record exactly once even
	// as segments rotate and old ones are pruned.
	s, err := l.SubscribeFrom(l.LastLSN() + 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	total := 0
	for round := 0; round < 5; round++ {
		ops := randomOps(r, 50)
		run(t, cube, l, ops)
		total += len(ops)
		if _, err := l.Checkpoint(cube.Save); err != nil {
			t.Fatal(err)
		}
	}
	recs := streamAll(t, s, uint64(total))
	if len(recs) != total {
		t.Fatalf("streamed %d records, want %d", len(recs), total)
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
}

func TestApplyReplicatedProducesIdenticalCube(t *testing.T) {
	primaryDir, replicaDir := t.TempDir(), t.TempDir()
	pc := newTestCube(t)
	_, pl, _, err := Recover(primaryDir, Options{Sync: SyncNever}, func() (*core.Cube, error) { return pc, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	rc := newTestCube(t)
	_, rl, _, err := Recover(replicaDir, Options{Sync: SyncNever}, func() (*core.Cube, error) { return rc, nil })
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(21))
	ops := randomOps(r, 300)
	run(t, pc, pl, ops)

	s, err := pl.SubscribeFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range streamAll(t, s, pl.LastLSN()) {
		if _, err := rl.ApplyReplicated(rc, rec.LSN, rec.Op); err != nil {
			t.Fatal(err)
		}
	}
	if rl.LastLSN() != pl.LastLSN() {
		t.Fatalf("replica at LSN %d, primary at %d", rl.LastLSN(), pl.LastLSN())
	}
	assertEquivalent(t, pc, rc, r)

	// A gap (skipped LSN) and an overlap (replayed LSN) both mean
	// divergence and must be refused.
	op := core.Op{Kind: core.OpInsert, Time: 5, Coords: []int{1, 1}, Value: 1}
	if _, err := rl.ApplyReplicated(rc, rl.LastLSN()+2, op); err == nil {
		t.Fatal("gap LSN accepted")
	}
	if _, err := rl.ApplyReplicated(rc, rl.LastLSN(), op); err == nil {
		t.Fatal("duplicate LSN accepted")
	}

	// The replica's own log must recover to the same state: its WAL is
	// a faithful copy of the primary's stream.
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	rc2, rl2, _, err := Recover(replicaDir, Options{Sync: SyncNever}, func() (*core.Cube, error) { return newTestCube(t), nil })
	if err != nil {
		t.Fatal(err)
	}
	defer rl2.Close()
	assertEquivalent(t, pc, rc2, r)
}

func TestInstallCheckpointResetsSegments(t *testing.T) {
	primaryDir, replicaDir := t.TempDir(), t.TempDir()
	pc := newTestCube(t)
	_, pl, _, err := Recover(primaryDir, Options{Sync: SyncNever}, func() (*core.Cube, error) { return pc, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	r := rand.New(rand.NewSource(31))
	run(t, pc, pl, randomOps(r, 120))
	snapLSN := pl.LastLSN()
	var snap bytes.Buffer
	if err := pc.Save(&snap); err != nil {
		t.Fatal(err)
	}

	// Replica has an unrelated shorter history; installing the primary
	// snapshot must discard its segments so recovery does not continue
	// an old segment with mismatched implicit LSNs.
	rcOld := newTestCube(t)
	_, rlOld, _, err := Recover(replicaDir, Options{Sync: SyncNever}, func() (*core.Cube, error) { return rcOld, nil })
	if err != nil {
		t.Fatal(err)
	}
	run(t, rcOld, rlOld, randomOps(rand.New(rand.NewSource(32)), 10))
	if err := rlOld.Close(); err != nil {
		t.Fatal(err)
	}

	if err := InstallCheckpoint(replicaDir, snapLSN, bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(replicaDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("%d stale segments survived install", len(segs))
	}

	rc := newTestCube(t)
	cube, rl, res, err := Recover(replicaDir, Options{Sync: SyncNever}, func() (*core.Cube, error) { return rc, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	if res.CheckpointLSN != snapLSN {
		t.Fatalf("recovered from checkpoint %d, want %d", res.CheckpointLSN, snapLSN)
	}
	if rl.LastLSN() != snapLSN {
		t.Fatalf("recovered log at LSN %d, want %d", rl.LastLSN(), snapLSN)
	}
	// Appends after install must continue the primary's numbering.
	lsn, err := rl.Append(core.Op{Kind: core.OpInsert, Time: 9, Coords: []int{1, 1}, Value: 3})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != snapLSN+1 {
		t.Fatalf("first post-install append got LSN %d, want %d", lsn, snapLSN+1)
	}
	assertEquivalent(t, pc, cube, r)
}
