package wal

// Streaming reader for replication (the primary side of WAL shipping).
//
// A Stream is a cursor over the log's record sequence: catch-up reads
// come from an in-memory ring of recently appended records or, when
// the follower is further behind, from the on-disk segments; once the
// cursor reaches the shipping frontier it blocks on an append-signalled
// channel, so a caught-up follower receives each record with no
// polling. The paper's append-only contract (Sec. 2.2 — cube state is
// a deterministic function of the linear op stream) is what makes this
// sufficient: shipping the op stream IS shipping the state.
//
// Shipping frontier: only records whose Append returned success are
// ever shipped. Under SyncAlways a successful Append implies a
// successful fsync, and the fsync-failure repair path
// (reopenAfterSyncFailureLocked) only ever rolls back records whose
// Append FAILED — so a shipped record can never be rolled back and its
// LSN can never be reused for a different op. An acked write is
// durable and shippable; an unacked write is neither.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"histcube/internal/core"
)

// ErrTruncated reports that the requested position precedes the oldest
// record still on disk: checkpointing pruned the segments behind it,
// so the subscriber must bootstrap from a snapshot instead.
var ErrTruncated = errors.New("wal: requested LSN precedes the oldest retained record (bootstrap from a snapshot)")

// ErrFutureLSN reports a subscription beyond the log's end — the
// subscriber claims to hold records this log never appended, which on
// a replication link means the follower diverged from this primary.
var ErrFutureLSN = errors.New("wal: requested LSN is beyond the end of the log (follower ahead of primary)")

// ringSize is the capacity of the recent-record ring serving catch-up
// reads without touching disk; a power of two so lsn%ringSize is cheap.
const ringSize = 1024

// streamRec is one ring slot; lsn disambiguates stale slots after the
// ring wraps.
type streamRec struct {
	lsn uint64
	op  core.Op
}

// StreamRecord is one shipped record with its LSN.
type StreamRecord struct {
	LSN uint64
	Op  core.Op
}

// ringPutLocked records a freshly shipped record in the ring. The
// caller holds mu. Coords are copied: the ring outlives the request
// that owned the slice.
func (l *Log) ringPutLocked(lsn uint64, op core.Op) {
	if l.ring == nil {
		l.ring = make([]streamRec, ringSize)
	}
	cp := op
	cp.Coords = append([]int(nil), op.Coords...)
	l.ring[lsn%ringSize] = streamRec{lsn: lsn, op: cp}
}

// ringGetLocked serves one record from the ring, if it still holds the
// requested LSN. The caller holds mu.
func (l *Log) ringGetLocked(lsn uint64) (core.Op, bool) {
	if l.ring == nil {
		return core.Op{}, false
	}
	e := l.ring[lsn%ringSize]
	if e.lsn != lsn {
		return core.Op{}, false
	}
	return e.op, true
}

// notifyWaitersLocked wakes every blocked Stream. The caller holds mu.
func (l *Log) notifyWaitersLocked() {
	for _, ch := range l.waiters {
		close(ch)
	}
	l.waiters = nil
}

// ShippedLSN returns the shipping frontier: the newest LSN a Stream
// may deliver (the last successfully acknowledged append).
func (l *Log) ShippedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shippedLSN
}

// OldestLSN returns the LSN of the oldest record still readable from
// the retained segments (nextLSN when the log holds no records — a
// fresh directory, or everything checkpointed and pruned). A follower
// must subscribe at or above it, or bootstrap from a snapshot.
func (l *Log) OldestLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.oldestLSNLocked()
}

func (l *Log) oldestLSNLocked() uint64 {
	segs, err := listSegments(l.dir)
	if err != nil || len(segs) == 0 {
		return l.nextLSN
	}
	return segs[0].seq
}

// Stream is a subscription cursor positioned before one LSN. Not safe
// for concurrent use; one replication connection owns one Stream.
type Stream struct {
	log  *Log
	next uint64
	buf  []StreamRecord // disk catch-up read-ahead
}

// SubscribeFrom opens a Stream whose first record will be LSN from.
// It fails with ErrTruncated when from precedes the oldest retained
// record (the subscriber needs a snapshot first) and with ErrFutureLSN
// when from is beyond the next LSN this log will assign.
func (l *Log) SubscribeFrom(from uint64) (*Stream, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if from == 0 {
		from = 1
	}
	if oldest := l.oldestLSNLocked(); from < oldest {
		return nil, fmt.Errorf("%w: want LSN %d, oldest retained is %d", ErrTruncated, from, oldest)
	}
	if from > l.shippedLSN+1 {
		return nil, fmt.Errorf("%w: want LSN %d, log ends at %d", ErrFutureLSN, from, l.shippedLSN)
	}
	return &Stream{log: l, next: from}, nil
}

// Next returns the record at the cursor, blocking until one is
// shippable, the ctx ends, or the log closes. Callers that need a
// keepalive cadence wrap ctx with a timeout per call.
func (s *Stream) Next(ctx context.Context) (StreamRecord, error) {
	emptyFills := 0
	for {
		if len(s.buf) > 0 {
			rec := s.buf[0]
			s.buf = s.buf[1:]
			s.next = rec.LSN + 1
			return rec, nil
		}
		l := s.log
		l.mu.Lock()
		if s.next <= l.shippedLSN {
			if op, ok := l.ringGetLocked(s.next); ok {
				rec := StreamRecord{LSN: s.next, Op: op}
				s.next++
				l.mu.Unlock()
				return rec, nil
			}
			shipped := l.shippedLSN
			l.mu.Unlock()
			n, err := s.fillFromDisk(shipped)
			if err != nil {
				return StreamRecord{}, err
			}
			if n == 0 {
				// A checkpoint pruning segments under the read; re-resolve.
				if emptyFills++; emptyFills > 5 {
					return StreamRecord{}, fmt.Errorf("wal: stream stuck reading LSN %d", s.next)
				}
			}
			continue
		}
		if l.closed {
			l.mu.Unlock()
			return StreamRecord{}, ErrClosed
		}
		ch := make(chan struct{})
		l.waiters = append(l.waiters, ch)
		l.mu.Unlock()
		select {
		case <-ctx.Done():
			l.mu.Lock()
			for i, w := range l.waiters {
				if w == ch {
					l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
					break
				}
			}
			l.mu.Unlock()
			return StreamRecord{}, ctx.Err()
		case <-ch:
		}
	}
}

// fillFromDisk reads the segment containing the cursor and buffers
// every record in [s.next, shipped] it holds. Reads run without mu —
// segments are append-only and readSegment tolerates a torn tail, so
// the only race is pruning, which surfaces as ENOENT and is retried by
// the caller (or reported as ErrTruncated when the cursor really fell
// behind the retention horizon).
func (s *Stream) fillFromDisk(shipped uint64) (int, error) {
	segs, err := listSegments(s.log.dir)
	if err != nil {
		return 0, err
	}
	idx := -1
	for i, sg := range segs {
		if sg.seq <= s.next {
			idx = i
		} else {
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("%w: want LSN %d", ErrTruncated, s.next)
	}
	first, ops, _, _, err := readSegment(segs[idx].path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			if oldest := s.log.OldestLSN(); s.next < oldest {
				return 0, fmt.Errorf("%w: want LSN %d, oldest retained is %d", ErrTruncated, s.next, oldest)
			}
			return 0, nil // pruned mid-read but the cursor is still covered; retry
		}
		return 0, err
	}
	for j, op := range ops {
		lsn := first + uint64(j)
		if lsn < s.next || lsn > shipped {
			continue
		}
		s.buf = append(s.buf, StreamRecord{LSN: lsn, Op: op})
	}
	return len(s.buf), nil
}

// InstallCheckpoint writes a snapshot (core.Save bytes from r) into dir
// as the checkpoint covering lsn — the follower side of snapshot
// bootstrap: a replica whose position fell behind the primary's
// retention horizon installs the shipped snapshot, then re-runs Recover
// so its cube and log positions align with the primary's LSNs. Segments
// whose records are all covered by the installed checkpoint are
// removed; without that, recovery would continue an old segment whose
// implicit record LSNs (firstLSN + index) no longer match the log
// position, silently mis-numbering every later append. The caller must
// not hold the directory's Log open.
func InstallCheckpoint(dir string, lsn uint64, r io.Reader) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, "checkpoint.install.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = io.Copy(f, r)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ckptName(lsn))); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for i, sg := range segs {
		var end uint64
		if i+1 < len(segs) {
			end = segs[i+1].seq - 1
		} else {
			first, ops, _, _, rerr := readSegment(sg.path)
			if rerr != nil {
				break // unreadable tail segment: leave it for Recover to judge
			}
			end = first + uint64(len(ops)) - 1
			if len(ops) == 0 {
				end = first - 1
			}
		}
		if end > lsn {
			break // segments ascend; the first survivor ends the removable prefix
		}
		if err := os.Remove(sg.path); err != nil {
			return err
		}
	}
	return syncDir(dir)
}
