package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"histcube/internal/core"
	"histcube/internal/dims"
)

// On-disk layout.
//
// A segment file is a 16-byte header followed by records:
//
//	header:  magic "HWAL" | version u32 | firstLSN u64
//	record:  crc32 u32 | size u32 | payload (size bytes)
//	payload: kind u8 | time i64 | ndims u16 | coord i64 × ndims | value f64
//
// Everything is little-endian. The CRC (IEEE) covers the payload only;
// the size field is validated by range before it is trusted. Records
// carry no explicit LSN: a record's LSN is the segment's firstLSN plus
// its index, which stays correct because segments are append-only and
// recovery truncates any torn tail before new appends continue.
const (
	segMagic      = "HWAL"
	segVersion    = 1
	segHeaderSize = 16

	recHeaderSize = 8
	// minPayload is an op with zero coordinates.
	minPayload = 1 + 8 + 2 + 8
	// maxRecordSize bounds one payload; anything larger is treated as
	// corruption rather than an allocation request.
	maxRecordSize = 1 << 20
	// maxDims bounds the coordinate count of a decoded record.
	maxDims = (maxRecordSize - minPayload) / 8
)

func encodeSegHeader(firstLSN uint64) []byte {
	b := make([]byte, segHeaderSize)
	copy(b, segMagic)
	binary.LittleEndian.PutUint32(b[4:], segVersion)
	binary.LittleEndian.PutUint64(b[8:], firstLSN)
	return b
}

func parseSegHeader(b []byte) (firstLSN uint64, err error) {
	if len(b) < segHeaderSize || string(b[:4]) != segMagic {
		return 0, fmt.Errorf("wal: bad segment header")
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != segVersion {
		return 0, fmt.Errorf("wal: segment version %d not supported", v)
	}
	return binary.LittleEndian.Uint64(b[8:]), nil
}

// appendRecord appends the framed record for op to dst.
func appendRecord(dst []byte, op core.Op) ([]byte, error) {
	if len(op.Coords) > maxDims {
		return dst, fmt.Errorf("wal: op has %d coordinates, limit %d", len(op.Coords), maxDims)
	}
	size := minPayload + 8*len(op.Coords)
	start := len(dst)
	dst = append(dst, make([]byte, recHeaderSize+size)...)
	p := dst[start+recHeaderSize:]
	p[0] = byte(op.Kind)
	binary.LittleEndian.PutUint64(p[1:], uint64(op.Time))
	binary.LittleEndian.PutUint16(p[9:], uint16(len(op.Coords)))
	off := 11
	for _, c := range op.Coords {
		binary.LittleEndian.PutUint64(p[off:], uint64(int64(c)))
		off += 8
	}
	binary.LittleEndian.PutUint64(p[off:], math.Float64bits(op.Value))
	binary.LittleEndian.PutUint32(dst[start:], crc32.ChecksumIEEE(p))
	binary.LittleEndian.PutUint32(dst[start+4:], uint32(size))
	return dst, nil
}

// decodePayload parses one CRC-verified payload back into an op.
func decodePayload(p []byte) (core.Op, error) {
	if len(p) < minPayload {
		return core.Op{}, fmt.Errorf("wal: payload too short (%d bytes)", len(p))
	}
	op := core.Op{
		Kind: core.OpKind(p[0]),
		Time: int64(binary.LittleEndian.Uint64(p[1:])),
	}
	n := int(binary.LittleEndian.Uint16(p[9:]))
	if len(p) != minPayload+8*n {
		return core.Op{}, fmt.Errorf("wal: payload size %d does not match %d coordinates", len(p), n)
	}
	op.Coords = make([]int, n)
	off := 11
	for i := range op.Coords {
		c, ok := dims.ToCoord(int64(binary.LittleEndian.Uint64(p[off:])))
		if !ok {
			// No valid append ever wrote such a value, so treat it as
			// corruption: readSegment turns the decode error into a
			// torn-tail truncation instead of remapping the coordinate.
			return core.Op{}, fmt.Errorf("wal: coordinate %d of record overflows the coordinate range", i)
		}
		op.Coords[i] = c
		off += 8
	}
	op.Value = math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
	return op, nil
}

// readSegment reads a whole segment file. It returns the segment's
// first LSN, the decoded ops, the byte offset up to which the file is
// valid, and whether a torn (incomplete or corrupt) tail was found
// after goodLen. A file whose header itself is unreadable returns an
// error; the caller decides whether that is fatal (mid-log) or
// discardable (final segment of an interrupted run).
func readSegment(path string) (first uint64, ops []core.Op, goodLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, 0, false, err
	}
	first, err = parseSegHeader(data)
	if err != nil {
		return 0, nil, 0, false, fmt.Errorf("%w: %s", err, path)
	}
	off := segHeaderSize
	for off < len(data) {
		if len(data)-off < recHeaderSize {
			return first, ops, int64(off), true, nil
		}
		crc := binary.LittleEndian.Uint32(data[off:])
		size := int(binary.LittleEndian.Uint32(data[off+4:]))
		if size < minPayload || size > maxRecordSize || off+recHeaderSize+size > len(data) {
			return first, ops, int64(off), true, nil
		}
		payload := data[off+recHeaderSize : off+recHeaderSize+size]
		if crc32.ChecksumIEEE(payload) != crc {
			return first, ops, int64(off), true, nil
		}
		op, derr := decodePayload(payload)
		if derr != nil {
			// CRC-valid but undecodable: treat like any other torn
			// tail so recovery truncates instead of failing.
			return first, ops, int64(off), true, nil
		}
		ops = append(ops, op)
		off += recHeaderSize + size
	}
	return first, ops, int64(off), false, nil
}
