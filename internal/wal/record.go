package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"histcube/internal/core"
	"histcube/internal/dims"
)

// On-disk layout.
//
// A segment file is a 16-byte header followed by records:
//
//	header:  magic "HWAL" | version u32 | firstLSN u64
//	record:  crc32 u32 | size u32 | payload (size bytes)
//	payload: kind u8 | time i64 | ndims u16 | coord i64 × ndims | value f64
//
// Everything is little-endian. The CRC (IEEE) covers the payload only;
// the size field is validated by range before it is trusted. Records
// carry no explicit LSN: a record's LSN is the segment's firstLSN plus
// its index, which stays correct because segments are append-only and
// recovery truncates any torn tail before new appends continue.
const (
	segMagic      = "HWAL"
	segVersion    = 1
	segHeaderSize = 16

	recHeaderSize = 8
	// minPayload is an op with zero coordinates.
	minPayload = 1 + 8 + 2 + 8
	// maxRecordSize bounds one payload; anything larger is treated as
	// corruption rather than an allocation request.
	maxRecordSize = 1 << 20
	// maxDims bounds the coordinate count of a decoded record.
	maxDims = (maxRecordSize - minPayload) / 8
)

func encodeSegHeader(firstLSN uint64) []byte {
	b := make([]byte, segHeaderSize)
	copy(b, segMagic)
	binary.LittleEndian.PutUint32(b[4:], segVersion)
	binary.LittleEndian.PutUint64(b[8:], firstLSN)
	return b
}

func parseSegHeader(b []byte) (firstLSN uint64, err error) {
	if len(b) < segHeaderSize || string(b[:4]) != segMagic {
		return 0, fmt.Errorf("wal: bad segment header")
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != segVersion {
		return 0, fmt.Errorf("wal: segment version %d not supported", v)
	}
	return binary.LittleEndian.Uint64(b[8:]), nil
}

// appendRecord appends the framed record for op to dst.
func appendRecord(dst []byte, op core.Op) ([]byte, error) {
	if len(op.Coords) > maxDims {
		return dst, fmt.Errorf("wal: op has %d coordinates, limit %d", len(op.Coords), maxDims)
	}
	size := minPayload + 8*len(op.Coords)
	start := len(dst)
	dst = append(dst, make([]byte, recHeaderSize+size)...)
	p := dst[start+recHeaderSize:]
	p[0] = byte(op.Kind)
	binary.LittleEndian.PutUint64(p[1:], uint64(op.Time))
	binary.LittleEndian.PutUint16(p[9:], uint16(len(op.Coords)))
	off := 11
	for _, c := range op.Coords {
		binary.LittleEndian.PutUint64(p[off:], uint64(int64(c)))
		off += 8
	}
	binary.LittleEndian.PutUint64(p[off:], math.Float64bits(op.Value))
	binary.LittleEndian.PutUint32(dst[start:], crc32.ChecksumIEEE(p))
	binary.LittleEndian.PutUint32(dst[start+4:], uint32(size))
	return dst, nil
}

// decodePayload parses one CRC-verified payload back into an op.
func decodePayload(p []byte) (core.Op, error) {
	if len(p) < minPayload {
		return core.Op{}, fmt.Errorf("wal: payload too short (%d bytes)", len(p))
	}
	op := core.Op{
		Kind: core.OpKind(p[0]),
		Time: int64(binary.LittleEndian.Uint64(p[1:])),
	}
	n := int(binary.LittleEndian.Uint16(p[9:]))
	if len(p) != minPayload+8*n {
		return core.Op{}, fmt.Errorf("wal: payload size %d does not match %d coordinates", len(p), n)
	}
	op.Coords = make([]int, n)
	off := 11
	for i := range op.Coords {
		c, ok := dims.ToCoord(int64(binary.LittleEndian.Uint64(p[off:])))
		if !ok {
			// No valid append ever wrote such a value, so treat it as
			// corruption: readSegment turns the decode error into a
			// torn-tail truncation instead of remapping the coordinate.
			return core.Op{}, fmt.Errorf("wal: coordinate %d of record overflows the coordinate range", i)
		}
		op.Coords[i] = c
		off += 8
	}
	op.Value = math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
	return op, nil
}

// CorruptError reports damage in the *middle* of the log: a record
// fails its frame or CRC check, yet valid records follow it. A torn
// tail (the crash interrupting the final append) never looks like
// this, so mid-log corruption means acknowledged history was damaged
// after the fact — bit rot, a bad sector, outside interference.
// Recovery refuses to silently drop acknowledged records; the error
// names the first unrecoverable LSN and how to quarantine the segment
// if the operator decides to accept the loss.
type CorruptError struct {
	// Path is the damaged segment file.
	Path string
	// LSN is the first record that cannot be recovered.
	LSN uint64
	// Offset is the byte offset of the damaged frame within Path.
	Offset int64
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: log corrupt at LSN %d (%s, byte offset %d): "+
		"valid records follow the damaged region, so this is mid-log corruption, "+
		"not a torn tail; refusing to guess. To accept losing LSNs >= %d, "+
		"quarantine the segment: mv %s %s.corrupt",
		e.LSN, e.Path, e.Offset, e.LSN, e.Path, e.Path)
}

// validFrameAt reports whether a complete, CRC-valid, decodable record
// frame starts at off.
func validFrameAt(data []byte, off int) bool {
	if len(data)-off < recHeaderSize {
		return false
	}
	crc := binary.LittleEndian.Uint32(data[off:])
	size := int(binary.LittleEndian.Uint32(data[off+4:]))
	if size < minPayload || size > maxRecordSize || off+recHeaderSize+size > len(data) {
		return false
	}
	payload := data[off+recHeaderSize : off+recHeaderSize+size]
	if crc32.ChecksumIEEE(payload) != crc {
		return false
	}
	_, err := decodePayload(payload)
	return err == nil
}

// scanForRecord reports whether any complete valid record frame starts
// at or after start. It distinguishes a torn tail (nothing valid
// follows the damage — safe to truncate) from mid-log corruption
// (acknowledged records follow — truncating would drop them).
func scanForRecord(data []byte, start int) bool {
	for off := start; off+recHeaderSize <= len(data); off++ {
		if validFrameAt(data, off) {
			return true
		}
	}
	return false
}

// readSegment reads a whole segment file. It returns the segment's
// first LSN, the decoded ops, the byte offset up to which the file is
// valid, and whether a torn (incomplete or corrupt) tail was found
// after goodLen. A bad frame with valid records after it is mid-log
// corruption and comes back as a *CorruptError — the caller must not
// truncate it away. A file whose header itself is unreadable returns
// an ordinary error; the caller decides whether that is fatal
// (mid-log) or discardable (final segment of an interrupted run).
func readSegment(path string) (first uint64, ops []core.Op, goodLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, 0, false, err
	}
	first, err = parseSegHeader(data)
	if err != nil {
		return 0, nil, 0, false, fmt.Errorf("%w: %s", err, path)
	}
	// badFrame classifies the damage at off: torn tail when nothing
	// valid follows, CorruptError when acknowledged records do.
	badFrame := func(off int) (uint64, []core.Op, int64, bool, error) {
		if scanForRecord(data, off+1) {
			return first, ops, int64(off), false,
				&CorruptError{Path: path, LSN: first + uint64(len(ops)), Offset: int64(off)}
		}
		return first, ops, int64(off), true, nil
	}
	off := segHeaderSize
	for off < len(data) {
		if len(data)-off < recHeaderSize {
			return badFrame(off)
		}
		crc := binary.LittleEndian.Uint32(data[off:])
		size := int(binary.LittleEndian.Uint32(data[off+4:]))
		if size < minPayload || size > maxRecordSize || off+recHeaderSize+size > len(data) {
			return badFrame(off)
		}
		payload := data[off+recHeaderSize : off+recHeaderSize+size]
		if crc32.ChecksumIEEE(payload) != crc {
			return badFrame(off)
		}
		op, derr := decodePayload(payload)
		if derr != nil {
			return badFrame(off)
		}
		ops = append(ops, op)
		off += recHeaderSize + size
	}
	return first, ops, int64(off), false, nil
}
