package pager_test

import (
	"errors"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"histcube/internal/fault"
	"histcube/internal/pager"
	"histcube/internal/retry"
)

// TestFileBackendLoadPastEOF pins the designed behaviour: pages never
// stored read as zero, including a page that straddles EOF.
func TestFileBackendLoadPastEOF(t *testing.T) {
	b, err := pager.NewFileBackend(filepath.Join(t.TempDir(), "pages"), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Store(0, []byte("01234567")); err != nil {
		t.Fatal(err)
	}
	buf := []byte("xxxxxxxx")
	if err := b.Load(5, buf); err != nil {
		t.Fatalf("load past EOF: %v", err)
	}
	if string(buf) != "\x00\x00\x00\x00\x00\x00\x00\x00" {
		t.Fatalf("page past EOF = %q, want zeros", buf)
	}
}

// TestFileBackendLoadPropagatesRealErrors is the regression test for
// the bug where every read error was zero-filled and reported as
// success: a Load against a closed file must fail, not silently return
// a zero page.
func TestFileBackendLoadPropagatesRealErrors(t *testing.T) {
	b, err := pager.NewFileBackend(filepath.Join(t.TempDir(), "pages"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Store(0, []byte("01234567")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	err = b.Load(0, buf)
	if err == nil {
		t.Fatal("Load on a closed file reported success")
	}
	if !strings.Contains(err.Error(), "loading page 0") {
		t.Fatalf("error %v should name the page", err)
	}
}

// TestFileBackendErrorPropagation drives Store, Sync and Close through
// their failure paths against a closed file.
func TestFileBackendErrorPropagation(t *testing.T) {
	b, err := pager.NewFileBackend(filepath.Join(t.TempDir(), "pages"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(0, make([]byte, 8)); err == nil {
		t.Error("Store on a closed file reported success")
	}
	if err := b.Sync(); err == nil {
		t.Error("Sync on a closed file reported success")
	}
	if err := b.Close(); err == nil {
		t.Error("second Close reported success")
	}
}

// TestPagerSurfacesBackendFaults runs a Pager over an injected-fault
// backend and checks the error reaches cell reads instead of being
// absorbed into a zero page.
func TestPagerSurfacesBackendFaults(t *testing.T) {
	inj := fault.MustParse("pager.load:err@2", 1)
	b := inj.WrapBackend("pager", pager.NewMemBackend(64))
	p, err := pager.New(b, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteCell(0, 1.5); err != nil {
		t.Fatal(err)
	}
	// Pin page 0 (load op 1), then force an eviction to page 1 so the
	// second load hits the injected fault.
	if _, err := p.ReadCell(0); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if _, err := p.ReadCell(100); err == nil {
		t.Fatal("faulted page load should surface from ReadCell")
	}
}

// noSleepPolicy is retry.Default with sleeps recorded instead of taken.
func noSleepPolicy(slept *[]time.Duration) retry.Policy {
	p := retry.Default()
	p.Sleep = func(d time.Duration) { *slept = append(*slept, d) }
	return p
}

// flakyBackend fails the first failures calls to each op, then
// delegates to a MemBackend.
type flakyBackend struct {
	inner    *pager.MemBackend
	failures int
	calls    int
	err      error
}

func (f *flakyBackend) op() error {
	f.calls++
	if f.calls <= f.failures {
		return f.err
	}
	return nil
}

func (f *flakyBackend) Load(id int, buf []byte) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Load(id, buf)
}

func (f *flakyBackend) Store(id int, buf []byte) error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Store(id, buf)
}

func (f *flakyBackend) Sync() error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *flakyBackend) Close() error {
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Close()
}

func TestRetryBackendAbsorbsTransientFaults(t *testing.T) {
	var slept []time.Duration
	fb := &flakyBackend{inner: pager.NewMemBackend(8), failures: 2, err: errors.New("transient I/O")}
	rb := pager.NewRetryBackend(fb, noSleepPolicy(&slept))
	if err := rb.Store(0, make([]byte, 8)); err != nil {
		t.Fatalf("Store should succeed on the third attempt: %v", err)
	}
	if fb.calls != 3 || len(slept) != 2 {
		t.Fatalf("calls=%d sleeps=%d, want 3 calls and 2 backoffs", fb.calls, len(slept))
	}
}

func TestRetryBackendFailsFastOnENOSPC(t *testing.T) {
	var slept []time.Duration
	fb := &flakyBackend{inner: pager.NewMemBackend(8), failures: 10, err: syscall.ENOSPC}
	rb := pager.NewRetryBackend(fb, noSleepPolicy(&slept))
	err := rb.Store(0, make([]byte, 8))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Store = %v, want ENOSPC", err)
	}
	if fb.calls != 1 || len(slept) != 0 {
		t.Fatalf("calls=%d sleeps=%d: a full disk must not be retried", fb.calls, len(slept))
	}
}

func TestRetryBackendExhaustsAttempts(t *testing.T) {
	var slept []time.Duration
	base := errors.New("stuck")
	fb := &flakyBackend{inner: pager.NewMemBackend(8), failures: 10, err: base}
	rb := pager.NewRetryBackend(fb, noSleepPolicy(&slept))
	if err := rb.Load(0, make([]byte, 8)); !errors.Is(err, base) {
		t.Fatalf("Load = %v, want the underlying error after exhaustion", err)
	}
	if fb.calls != 3 {
		t.Fatalf("calls = %d, want the default 3 attempts", fb.calls)
	}
}

func TestRetryBackendCloseIsNotRetried(t *testing.T) {
	fb := &flakyBackend{inner: pager.NewMemBackend(8), failures: 1, err: errors.New("close failed")}
	rb := pager.NewRetryBackend(fb, retry.Policy{Attempts: 5})
	if err := rb.Close(); err == nil {
		t.Fatal("Close error should propagate")
	}
	if fb.calls != 1 {
		t.Fatalf("calls = %d, Close must not be retried", fb.calls)
	}
}
