package pager

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadPageSize(t *testing.T) {
	for _, sz := range []int{0, -8, 3, 6} {
		if _, err := New(NewMemBackend(sz), sz); err == nil {
			t.Errorf("New accepted page size %d", sz)
		}
	}
}

func TestCellsPerPageDefault(t *testing.T) {
	p, err := New(NewMemBackend(DefaultPageSize), DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	if p.CellsPerPage() != 2048 {
		t.Errorf("CellsPerPage = %d, want 2048 (paper: 8K page, 4-byte cells)", p.CellsPerPage())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	p, _ := New(NewMemBackend(64), 64)
	for i := 0; i < 100; i++ {
		if err := p.WriteCell(i, float64(i)*0.5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := p.ReadCell(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != float64(i)*0.5 {
			t.Fatalf("cell %d = %v, want %v", i, got, float64(i)*0.5)
		}
	}
}

func TestUnwrittenCellsReadZero(t *testing.T) {
	p, _ := New(NewMemBackend(64), 64)
	got, err := p.ReadCell(12345)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("unwritten cell = %v", got)
	}
}

func TestSinglePageBufferCostModel(t *testing.T) {
	p, _ := New(NewMemBackend(64), 64) // 16 cells per page
	// All accesses within one page cost exactly one read.
	for i := 0; i < 16; i++ {
		if _, err := p.ReadCell(i); err != nil {
			t.Fatal(err)
		}
	}
	if p.Reads != 1 || p.Writes != 0 {
		t.Fatalf("same-page reads cost %d reads %d writes, want 1/0", p.Reads, p.Writes)
	}
	// Touching a second page costs another read.
	if _, err := p.ReadCell(16); err != nil {
		t.Fatal(err)
	}
	if p.Reads != 2 {
		t.Fatalf("second page read: Reads = %d, want 2", p.Reads)
	}
	// Dirtying page 1 then switching pages incurs one write-back.
	if err := p.WriteCell(16, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadCell(0); err != nil {
		t.Fatal(err)
	}
	if p.Writes != 1 {
		t.Fatalf("dirty eviction: Writes = %d, want 1", p.Writes)
	}
	if p.IOs() != p.Reads+p.Writes {
		t.Error("IOs() inconsistent")
	}
}

func TestFlushPersistsDirtyPage(t *testing.T) {
	b := NewMemBackend(64)
	p, _ := New(b, 64)
	if err := p.WriteCell(3, 7); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if b.PageCount() != 1 {
		t.Fatalf("backend holds %d pages after flush, want 1", b.PageCount())
	}
	// A fresh pager over the same backend sees the value.
	p2, _ := New(b, 64)
	got, err := p2.ReadCell(3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("reloaded cell = %v, want 7", got)
	}
}

func TestResetCounters(t *testing.T) {
	p, _ := New(NewMemBackend(64), 64)
	if _, err := p.ReadCell(0); err != nil {
		t.Fatal(err)
	}
	p.ResetCounters()
	if p.Reads != 0 || p.Writes != 0 {
		t.Error("counters not reset")
	}
}

func TestFileBackendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.dat")
	b, err := NewFileBackend(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := New(b, 64)
	for i := 0; i < 50; i++ {
		if err := p.WriteCell(i*7, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		got, err := p.ReadCell(i * 7)
		if err != nil {
			t.Fatal(err)
		}
		if got != float64(i) {
			t.Fatalf("cell %d = %v, want %d", i*7, got, i)
		}
	}
	// Reading far past everything written yields zero.
	got, err := p.ReadCell(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("past-EOF cell = %v", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// Property: a Pager behaves like a flat float32 array under random
// read/write sequences, on both backends.
func TestPagerShadowProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, err := New(NewMemBackend(32), 32) // 8 cells/page
		if err != nil {
			return false
		}
		shadow := make(map[int]float64)
		for op := 0; op < 200; op++ {
			i := r.Intn(100)
			if r.Intn(2) == 0 {
				v := float64(r.Intn(1000))
				if err := p.WriteCell(i, v); err != nil {
					return false
				}
				shadow[i] = v
			} else {
				got, err := p.ReadCell(i)
				if err != nil || got != shadow[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFileBackendSyncAndCloseErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.dat")
	b, err := NewFileBackend(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := New(b, 64)
	if err := p.WriteCell(3, 42); err != nil {
		t.Fatal(err)
	}
	// Sync flushes the dirty buffered page before fsyncing: the value
	// must be on disk afterwards, visible through a second backend.
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenFileBackend(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := New(b2, 64)
	if got, err := p2.ReadCell(3); err != nil || got != 42 {
		t.Fatalf("after Sync, reopened cell = %v (%v), want 42", got, err)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// A second close hits the already-closed file; the error must
	// surface instead of being swallowed.
	if err := b.Close(); err == nil {
		t.Error("double close reported no error")
	}
}

func TestMemBackendSync(t *testing.T) {
	b := NewMemBackend(64)
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
}
