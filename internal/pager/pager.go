// Package pager simulates the secondary-memory model of the paper's
// external-memory algorithm (Section 3.5): fixed-size pages (8 KiB by
// default), 4-byte cells (2048 cells per 8 KiB page, as in the
// paper's disk experiments), and I/O counters as the cost metric. A
// single-page buffer is the only caching — consecutive accesses to the
// same page cost one I/O, matching the paper's "no further caching"
// setup.
//
// Two backends are provided: an in-memory backend (fast, used by the
// benchmark harness) and a file backend (real disk I/O through the
// same interface).
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"histcube/internal/retry"
)

// DefaultPageSize is the page size used throughout the paper's
// experiments.
const DefaultPageSize = 8192

// CellSize is the size of one measure value on disk; the paper stores
// 4-byte measures, so an 8 KiB page holds 2048 cells.
const CellSize = 4

// Backend stores fixed-size pages by id. Pages that were never stored
// read as all zero.
type Backend interface {
	// Load fills buf (exactly one page) with the content of page id.
	Load(id int, buf []byte) error
	// Store persists buf (exactly one page) as page id.
	Store(id int, buf []byte) error
	// Sync forces stored pages to stable storage.
	Sync() error
	// Close releases backend resources, syncing first where that is
	// meaningful.
	Close() error
}

// MemBackend keeps pages in memory; it exists so the cost model can be
// exercised deterministically without touching the filesystem.
type MemBackend struct {
	pages map[int][]byte
	size  int
}

// NewMemBackend returns an empty in-memory backend for pages of the
// given size.
func NewMemBackend(pageSize int) *MemBackend {
	return &MemBackend{pages: make(map[int][]byte), size: pageSize}
}

// Load implements Backend.
func (m *MemBackend) Load(id int, buf []byte) error {
	if p, ok := m.pages[id]; ok {
		copy(buf, p)
		return nil
	}
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

// Store implements Backend.
func (m *MemBackend) Store(id int, buf []byte) error {
	p, ok := m.pages[id]
	if !ok {
		p = make([]byte, m.size)
		m.pages[id] = p
	}
	copy(p, buf)
	return nil
}

// Sync implements Backend; memory pages are as stable as they get.
func (m *MemBackend) Sync() error { return nil }

// Close implements Backend.
func (m *MemBackend) Close() error { return nil }

// PageCount returns the number of pages ever stored.
func (m *MemBackend) PageCount() int { return len(m.pages) }

// FileBackend stores pages in a regular file at offset id*pageSize.
type FileBackend struct {
	f    *os.File
	size int
}

// NewFileBackend creates (or truncates) the file at path.
func NewFileBackend(path string, pageSize int) (*FileBackend, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileBackend{f: f, size: pageSize}, nil
}

// OpenFileBackend opens the page file at path without truncating it,
// creating it when absent — the reopen path a durable deployment takes
// across restarts.
func OpenFileBackend(path string, pageSize int) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileBackend{f: f, size: pageSize}, nil
}

// Load implements Backend; reads past EOF yield zero pages. Only EOF
// is tolerated — a page that was never written reads as zero by
// design, but any other read error (a failing disk, a closed file)
// propagates instead of being silently zero-filled, which would turn
// an I/O fault into wrong query answers.
func (b *FileBackend) Load(id int, buf []byte) error {
	n, err := b.f.ReadAt(buf, int64(id)*int64(b.size))
	if err != nil {
		if !errors.Is(err, io.EOF) {
			return fmt.Errorf("pager: loading page %d: %w", id, err)
		}
		// Short read at EOF: the remainder was never stored, so it is
		// zero.
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
	}
	return nil
}

// Store implements Backend.
func (b *FileBackend) Store(id int, buf []byte) error {
	_, err := b.f.WriteAt(buf, int64(id)*int64(b.size))
	return err
}

// Sync implements Backend: fsync the page file.
func (b *FileBackend) Sync() error { return b.f.Sync() }

// Close implements Backend. It syncs before closing — pages written
// through WriteAt otherwise sit in the OS cache with no durability
// point at all — and propagates both the sync and the close error
// (first one wins) instead of swallowing them.
func (b *FileBackend) Close() error {
	err := b.f.Sync()
	if cerr := b.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Pager provides cell-granular access to paged storage of float32
// measure values, with the single-page buffer cost model. Reads and
// Writes count page I/Os (a buffer hit costs nothing; evicting a dirty
// page costs one write).
type Pager struct {
	backend  Backend
	pageSize int
	perPage  int

	cur   int // buffered page id, -1 if none
	buf   []byte
	dirty bool

	Reads  int64
	Writes int64
}

// New returns a Pager over the backend.
func New(b Backend, pageSize int) (*Pager, error) {
	if pageSize < CellSize || pageSize%CellSize != 0 {
		return nil, fmt.Errorf("pager: page size %d is not a positive multiple of the cell size %d", pageSize, CellSize)
	}
	return &Pager{
		backend:  b,
		pageSize: pageSize,
		perPage:  pageSize / CellSize,
		cur:      -1,
		buf:      make([]byte, pageSize),
	}, nil
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// CellsPerPage returns the number of 4-byte cells per page (2048 for
// the default 8 KiB page).
func (p *Pager) CellsPerPage() int { return p.perPage }

// PageOf returns the page id holding cell index i.
func (p *Pager) PageOf(i int) int { return i / p.perPage }

// pin makes page id current, flushing a dirty buffer first.
func (p *Pager) pin(id int) error {
	if p.cur == id {
		return nil
	}
	if err := p.flushLocked(); err != nil {
		return err
	}
	if err := p.backend.Load(id, p.buf); err != nil {
		return err
	}
	p.Reads++
	p.cur = id
	return nil
}

func (p *Pager) flushLocked() error {
	if p.cur >= 0 && p.dirty {
		if err := p.backend.Store(p.cur, p.buf); err != nil {
			return err
		}
		p.Writes++
		p.dirty = false
	}
	return nil
}

// ReadCell reads the float32 measure at global cell index i.
func (p *Pager) ReadCell(i int) (float64, error) {
	if err := p.pin(p.PageOf(i)); err != nil {
		return 0, err
	}
	off := (i % p.perPage) * CellSize
	bits := binary.LittleEndian.Uint32(p.buf[off:])
	return float64(math.Float32frombits(bits)), nil
}

// WriteCell writes the measure at global cell index i (stored as
// float32, as in the paper's 4-byte cells).
func (p *Pager) WriteCell(i int, v float64) error {
	if err := p.pin(p.PageOf(i)); err != nil {
		return err
	}
	off := (i % p.perPage) * CellSize
	binary.LittleEndian.PutUint32(p.buf[off:], math.Float32bits(float32(v)))
	p.dirty = true
	return nil
}

// Flush writes the buffered page back if dirty.
func (p *Pager) Flush() error { return p.flushLocked() }

// Sync flushes the buffered page and forces the backend to stable
// storage.
func (p *Pager) Sync() error {
	if err := p.flushLocked(); err != nil {
		return err
	}
	return p.backend.Sync()
}

// Close flushes and closes the backend.
func (p *Pager) Close() error {
	if err := p.flushLocked(); err != nil {
		return err
	}
	return p.backend.Close()
}

// RetryBackend wraps a Backend with bounded retry for transient I/O
// errors. Load, Store and Sync are retried under the policy; Close is
// not (a failed close is reported once — retrying it risks
// double-closing the underlying file). Permanent conditions (ENOSPC,
// canceled requests, retry.Permanent) fail fast, so a full disk
// surfaces immediately and the degradation machinery above can react.
type RetryBackend struct {
	inner  Backend
	policy retry.Policy
}

// NewRetryBackend wraps inner with the policy. A zero-value policy is
// replaced by retry.Default().
func NewRetryBackend(inner Backend, policy retry.Policy) *RetryBackend {
	if policy.Attempts == 0 {
		policy = retry.Default()
	}
	return &RetryBackend{inner: inner, policy: policy}
}

// Load implements Backend with retry.
func (r *RetryBackend) Load(id int, buf []byte) error {
	return r.policy.Do("pager.load", func() error { return r.inner.Load(id, buf) })
}

// Store implements Backend with retry.
func (r *RetryBackend) Store(id int, buf []byte) error {
	return r.policy.Do("pager.store", func() error { return r.inner.Store(id, buf) })
}

// Sync implements Backend with retry.
func (r *RetryBackend) Sync() error {
	return r.policy.Do("pager.sync", r.inner.Sync)
}

// Close implements Backend; it delegates without retry.
func (r *RetryBackend) Close() error { return r.inner.Close() }

// IOs returns Reads+Writes, the total page access count.
func (p *Pager) IOs() int64 { return p.Reads + p.Writes }

// ResetCounters zeroes the I/O counters (e.g. between benchmark
// phases). The buffered page stays pinned, matching a measurement that
// starts with a warm one-page buffer.
func (p *Pager) ResetCounters() {
	p.Reads = 0
	p.Writes = 0
}
