module histcube

go 1.22
